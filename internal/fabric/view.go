// View-change coordination: live resizing of the membership — grow n,
// shrink n, change f, swap any number of servers — with state transfer,
// without stopping reads or writes.
//
// The protocol generalizes the PR 8 replacement into a batched transition,
// committed as ONE activation:
//
//  1. Admit every joiner (Fabric.AddServer): fresh server IDs, empty
//     object tables, new dispatch lanes. Joiners receive no traffic yet —
//     routes still resolve to the old placement.
//  2. Freeze the departing servers together (Server.Depart +
//     lane.setDeparting). A transition that reshapes quorum sets (a
//     construction-level resize) freezes EVERY old member: thresholds
//     derived from the old view must never gather concurrently with
//     seeding of the new placement, or a write acked by an old quorum
//     could miss every member of a new one. A same-shape transition (the
//     1-for-1 Replace) freezes only the leavers.
//  3. Drain once: force-complete the gate-parked ops of every frozen lane
//     (PhaseApply never applied → retryable error; PhaseRespond already
//     linearized → its real response) and wait for on-the-wire ops to
//     finish. A frozen server that crashes mid-drain is detected — its
//     in-flight ops move to dropped, not completed — and the transition
//     aborts cleanly instead of transferring unsound state.
//  4. Transfer: the reshape callback (construction resize) re-places and
//     re-seeds base objects against the quiesced state; any objects still
//     hosted by leavers are then sealed, fetched, and moved one by one.
//  5. Activate: cluster.CommitView retires every leaver and installs the
//     new failure budget under a single epoch bump — no operation can
//     ever observe a mixed view — then surviving frozen lanes unfreeze
//     and leaver backends close.
//
// Clients never stop: ops caught in a freeze window complete with a
// retryable ErrViewChanged (the error guarantees the op never applied, so
// the retry is exactly-once safe even for CAS) and re-execute against the
// new view once it activates. An aborted transition (ErrResizeAborted)
// restores the old view: sealed-but-unmoved objects are rolled back via
// fresh unsealed clones, frozen survivors unfreeze, and empty joiners are
// retired. A leave is not a crash; a crash mid-transfer is — the abort
// spends nothing from the fail-stop budget beyond the crash that caused
// it.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// quiescePoll is the interval at which the coordinator re-checks a draining
// lane's in-flight count. Drains complete in a few delivery round-trips, so
// a sub-millisecond poll keeps reconfiguration latency dominated by the
// transport, not the coordinator.
const quiescePoll = 200 * time.Microsecond

// ErrResizeAborted marks a transition that was rolled back — typically
// because a frozen server crashed mid-drain or a transfer target crashed
// inside the sealed-but-not-activated window. The old view stays active
// (minus whatever the causing crash cost); the resize can be retried.
var ErrResizeAborted = errors.New("fabric: resize aborted")

// IsResizeAborted reports whether err is (or wraps) an aborted transition.
func IsResizeAborted(err error) bool { return errors.Is(err, ErrResizeAborted) }

// ResizeSpec describes a membership delta: any mix of joins, leaves, and a
// failure-budget change, committed as one transition.
type ResizeSpec struct {
	// Join lists the lane makers for the joining servers, one per joiner;
	// a nil entry uses the fabric's default maker.
	Join []LaneMaker
	// Leave lists the departing members. Each must be a live, non-departing
	// member of the current view.
	Leave []types.ServerID
	// F is the new failure budget; 0 keeps the current one.
	F int
}

// ResizeResult reports a committed transition.
type ResizeResult struct {
	// Joined are the admitted servers' IDs, in admission order.
	Joined []types.ServerID
	// Epoch is the activated view's epoch.
	Epoch uint64
	// Moved counts the objects transferred off leavers by the coordinator
	// (objects re-placed by a reshape callback are not counted here).
	Moved int
	// Duration is the freeze→activate wall-clock: how long operations
	// routed at frozen servers had to retry.
	Duration time.Duration
}

// ReshapeFunc is a construction-level resize run inside the frozen window:
// every old member is quiesced, so the callback may read authoritative
// state, create and seed base objects on the new placement, and retire old
// ones through the Reshaper without racing any client operation. A nil
// ReshapeFunc transfers leaver state 1-for-1 instead (the Replace shape).
type ReshapeFunc func(rs *Reshaper) error

// Replace performs a live 1-for-1 replacement of server old: a fresh
// server joins the view, the departing server freezes and drains, every
// object it hosts transfers (with state) onto the joiner, and the old
// server leaves the view. Reads and writes continue throughout. It is the
// same-shape special case of Resize.
//
// maker builds the joiner's lane backend; nil uses the fabric's default
// maker. Replace returns the joiner's server ID. Concurrent view changes
// serialize; replacing a crashed or already-departing server fails.
func (f *Fabric) Replace(ctx context.Context, old types.ServerID, maker LaneMaker) (types.ServerID, error) {
	res, err := f.Resize(ctx, ResizeSpec{Join: []LaneMaker{maker}, Leave: []types.ServerID{old}}, nil)
	if err != nil {
		return 0, err
	}
	return res.Joined[0], nil
}

// Resize commits an arbitrary membership delta as one transition: admit
// all joiners, freeze the departing set together, drain once, transfer
// each object's state to its new placement, then activate the new view —
// with its re-derived quorum thresholds — atomically. No operation ever
// gathers against a mixed view: the old view serves until the freeze, the
// new one from the single CommitView epoch bump.
//
// With a nil reshape the transition is placement-preserving: only the
// leavers freeze, and their objects move 1-for-1 onto the joiners (round-
// robin; onto surviving members if there are none). With a reshape the
// transition is quorum-reshaping: every old member freezes, and the
// callback re-places construction state against the quiesced world before
// activation (see Reshaper).
//
// A frozen server crashing at any point before activation aborts the
// transition (ErrResizeAborted): sealed-but-unmoved objects are restored,
// surviving frozen lanes unfreeze, empty joiners retire, and the old view
// stays active. The causing crash — and only it — is spent from the
// fail-stop budget.
func (f *Fabric) Resize(ctx context.Context, spec ResizeSpec, reshape ReshapeFunc) (*ResizeResult, error) {
	f.reconfMu.Lock()
	defer f.reconfMu.Unlock()

	// Validate the departing set before disturbing anything.
	type leaver struct {
		srv *cluster.Server
		l   *lane
	}
	seen := make(map[types.ServerID]bool, len(spec.Leave))
	leavers := make([]leaver, 0, len(spec.Leave))
	for _, old := range spec.Leave {
		if seen[old] {
			return nil, fmt.Errorf("fabric: server %d listed twice in the leave set", old)
		}
		seen[old] = true
		srv, err := f.cluster.Server(old)
		if err != nil {
			return nil, err
		}
		if srv.Crashed() {
			return nil, fmt.Errorf("fabric: cannot retire crashed server %d (its state is lost)", old)
		}
		if srv.Departing() {
			return nil, fmt.Errorf("fabric: server %d is already departing", old)
		}
		l := f.laneFor(old)
		if l == nil {
			return nil, fmt.Errorf("fabric: no dispatch lane for server %d", old)
		}
		leavers = append(leavers, leaver{srv: srv, l: l})
	}
	newF := spec.F
	if newF == 0 {
		newF = f.cluster.F()
	}
	oldMembers := f.cluster.Members()

	// 1. Admit every joiner before freezing anything: if an admission
	// fails, the old members were never disturbed (earlier joiners stay as
	// empty members; the caller may retire them with another Resize).
	joined := make([]types.ServerID, 0, len(spec.Join))
	for _, maker := range spec.Join {
		id, err := f.AddServer(maker)
		if err != nil {
			return nil, fmt.Errorf("fabric: admitting joiner: %w", err)
		}
		joined = append(joined, id)
	}

	// 2. Freeze. A reshape must freeze every old member: a quorum gathered
	// against the old thresholds concurrently with seeding could ack a
	// write on old members only, and a new-view quorum might intersect
	// that ack set nowhere. A placement-preserving transition keeps the
	// old quorum geometry, so only the leavers freeze.
	frozen := leavers
	if reshape != nil {
		for _, m := range oldMembers {
			if seen[m] {
				continue // already in the leaver set
			}
			srv, err := f.cluster.Server(m)
			if err != nil {
				return nil, err
			}
			l := f.laneFor(m)
			if l == nil {
				return nil, fmt.Errorf("fabric: no dispatch lane for server %d", m)
			}
			frozen = append(frozen, leaver{srv: srv, l: l})
		}
	}
	freezeStart := time.Now()
	for _, fr := range frozen {
		fr.srv.Depart()
		f.drainParked(fr.l.setDeparting())
	}
	if f.testAfterFreeze != nil {
		f.testAfterFreeze()
	}

	// Abort restores the old view: roll back sealed-but-unmoved objects,
	// unfreeze surviving frozen lanes, retire joiners that stayed empty.
	sealed := make(map[types.ObjectID]baseobj.State)
	abort := func(cause error) error {
		for obj, state := range sealed {
			if err := f.cluster.ReplaceObject(obj, state); err != nil {
				cause = fmt.Errorf("%v (rollback of object %d failed: %v)", cause, obj, err)
			}
		}
		for _, fr := range frozen {
			if fr.srv.Crashed() {
				continue // a crashed server stays down; crashed wins over departing
			}
			fr.srv.Undepart()
			fr.l.clearDeparting()
		}
		for _, id := range joined {
			srv, err := f.cluster.Server(id)
			if err != nil || srv.NumObjects() != 0 {
				continue // a joiner that already hosts state stays a member
			}
			if err := f.cluster.RemoveServer(id); err == nil {
				if l := f.laneFor(id); l != nil {
					_ = l.backend.Close()
				}
			}
		}
		// Both the abort marker and the cause stay matchable: callers branch
		// on IsResizeAborted, constructions' typed rejections (e.g. a pinned
		// coder refusing a restripe) stay reachable through errors.Is.
		return fmt.Errorf("%w: %w", ErrResizeAborted, cause)
	}

	// 3. Drain: wait out every frozen lane's on-the-wire ops. A frozen
	// server crashing here moves its in-flight ops to dropped — the count
	// reaches zero, but nothing completed — so the crash check, not the
	// count, is the exit condition that matters.
	for _, fr := range frozen {
		if err := f.awaitQuiesce(ctx, fr.l, fr.srv); err != nil {
			return nil, abort(fmt.Errorf("drain of server %d: %w", fr.l.server, err))
		}
	}

	// 4a. Construction-level reshape against the quiesced world.
	if reshape != nil {
		members := make([]types.ServerID, 0, len(oldMembers)+len(joined))
		for _, m := range oldMembers {
			if !seen[m] {
				members = append(members, m)
			}
		}
		members = append(members, joined...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		rs := &Reshaper{f: f, ctx: ctx, members: members, joined: joined, newF: newF}
		if err := reshape(rs); err != nil {
			return nil, abort(fmt.Errorf("reshape: %w", err))
		}
	}

	// 4b. Transfer whatever the leavers still host, in ascending server
	// then object order: seal + fetch the authoritative state, then move —
	// onto the joiners round-robin, or onto surviving members when the
	// view only shrinks.
	targets := joined
	if len(targets) == 0 {
		for _, m := range oldMembers {
			if !seen[m] {
				targets = append(targets, m)
			}
		}
	}
	moved := 0
	for _, fr := range leavers {
		old := fr.l.server
		for _, obj := range f.cluster.ObjectsOn(old) {
			if fr.srv.Crashed() {
				return nil, abort(fmt.Errorf("server %d crashed before object %d transferred", old, obj))
			}
			if len(targets) == 0 {
				return nil, abort(fmt.Errorf("no transfer target for object %d (every member is leaving)", obj))
			}
			o, err := f.cluster.Object(obj)
			if err != nil {
				return nil, abort(err)
			}
			state, err := f.fetchState(ctx, fr.l, fr.srv, o)
			_, canSeal := o.(baseobj.StateSealer)
			if !canSeal {
				_, canSeal = o.(baseobj.Sealer)
			}
			if err != nil {
				if canSeal {
					// fetchState seals before it can fail, so the rollback
					// must restore the pre-seal state.
					sealed[obj] = state
				}
				return nil, abort(fmt.Errorf("state fetch for object %d on server %d: %w", obj, old, err))
			}
			sealed[obj] = state
			to := targets[moved%len(targets)]
			if f.testBeforeMove != nil {
				f.testBeforeMove(obj, to)
			}
			if err := f.cluster.MoveObject(obj, to, state); err != nil {
				return nil, abort(fmt.Errorf("move object %d to server %d: %w", obj, to, err))
			}
			delete(sealed, obj)
			moved++
		}
	}

	// 5. Activate: one epoch bump retires every leaver and installs the
	// new failure budget; then surviving frozen lanes return to service
	// and leaver backends tear down. Close is ordered after CommitView so
	// a backend whose Close reports failure (reconnect-as-crash) cannot
	// crash a server that is still a member.
	if err := f.cluster.CommitView(spec.Leave, newF); err != nil {
		return nil, abort(fmt.Errorf("activate: %w", err))
	}
	duration := time.Since(freezeStart)
	for _, fr := range frozen {
		if seen[fr.l.server] || fr.srv.Crashed() {
			continue
		}
		fr.srv.Undepart()
		fr.l.clearDeparting()
	}
	var closeErr error
	for _, fr := range leavers {
		if err := fr.l.backend.Close(); err != nil && closeErr == nil {
			closeErr = fmt.Errorf("fabric: closing lane backend of server %d: %w", fr.l.server, err)
		}
	}
	res := &ResizeResult{Joined: joined, Epoch: f.cluster.Epoch(), Moved: moved, Duration: duration}
	return res, closeErr
}

// Reshaper is the handle a ReshapeFunc uses to re-place construction state
// during the frozen window. Every old member is departed and quiesced and
// the coordinator holds the reconfiguration lock, so the direct state
// reads and applies below cannot race client operations — they are the
// seeding primitive that makes a quorum-geometry change sound.
type Reshaper struct {
	f       *Fabric
	ctx     context.Context
	members []types.ServerID
	joined  []types.ServerID
	newF    int
}

// Context returns the transition's context.
func (rs *Reshaper) Context() context.Context { return rs.ctx }

// Members returns the post-activation member set in ascending ID order:
// the servers a construction should place its resized quorum sets on.
func (rs *Reshaper) Members() []types.ServerID { return rs.members }

// Joined returns the admitted joiners' IDs.
func (rs *Reshaper) Joined() []types.ServerID { return rs.joined }

// F returns the post-activation failure budget.
func (rs *Reshaper) F() int { return rs.newF }

// Fabric returns the fabric, for cluster placement (Place*) calls.
func (rs *Reshaper) Fabric() *Fabric { return rs.f }

// State reads an object's authoritative state without sealing or retiring
// it: local state for in-process/latency backends, a wire read for
// external-store backends. It fails — rather than hanging — if the hosting
// server has crashed.
func (rs *Reshaper) State(obj types.ObjectID) (baseobj.State, error) {
	rt, err := rs.f.route(obj)
	if err != nil {
		return baseobj.State{}, err
	}
	inv, err := stateReadInv(rt.obj.Kind())
	if err != nil {
		return baseobj.State{}, err
	}
	resp, err := rs.f.directApply(rs.ctx, rt, types.ClientID(-1), inv)
	if err != nil {
		return baseobj.State{}, err
	}
	return baseobj.State{Val: resp.Val, Data: resp.Data, Frags: resp.Frags}, nil
}

// Apply applies an invocation directly to an object's authoritative copy,
// bypassing routing gates, freezes, and in-flight bookkeeping — legal only
// because the world is frozen. Constructions use it to seed fresh objects
// and re-seed surviving ones with the folded maximum of the old placement.
func (rs *Reshaper) Apply(obj types.ObjectID, inv baseobj.Invocation) (baseobj.Response, error) {
	return rs.ApplyAs(types.ClientID(-1), obj, inv)
}

// ApplyAs is Apply with an explicit client identity, for seeding
// writer-restricted base objects: a single-writer register accepts only its
// owner, so the seed must carry the owning writer's ID rather than the
// synthetic coordinator identity.
func (rs *Reshaper) ApplyAs(client types.ClientID, obj types.ObjectID, inv baseobj.Invocation) (baseobj.Response, error) {
	rt, err := rs.f.route(obj)
	if err != nil {
		return baseobj.Response{}, err
	}
	return rs.f.directApply(rs.ctx, rt, client, inv)
}

// Retire removes a base object the construction no longer places (a store
// dropped by a shrink). The epoch bump fails stale routes instead of
// resolving them to the retired copy.
func (rs *Reshaper) Retire(obj types.ObjectID) error {
	return rs.f.cluster.RemoveObject(obj)
}

// directApply performs one frozen-window operation against an object's
// authoritative copy: a direct local apply for local-state backends, a
// real wire delivery (with a synthetic client identity, crash-polled) for
// external-store backends.
func (f *Fabric) directApply(ctx context.Context, rt *route, client types.ClientID, inv baseobj.Invocation) (baseobj.Response, error) {
	if rt.srv.Crashed() {
		return baseobj.Response{}, fmt.Errorf("fabric: server %d crashed", rt.server)
	}
	if _, remote := rt.lane.backend.(ObjectMirror); !remote {
		return rt.obj.Apply(client, inv)
	}
	ev := TriggerEvent{
		Token:  f.nextToken.Add(1),
		Client: client,
		Object: rt.obj.ID(),
		Server: rt.server,
		Inv:    inv,
	}
	done := make(chan Outcome, 1)
	rt.lane.backend.Deliver(ev,
		func() (baseobj.Response, error) {
			return baseobj.Response{}, fmt.Errorf("fabric: direct apply for object %d applied locally on a remote-state backend", rt.obj.ID())
		},
		func(resp baseobj.Response, err error) {
			done <- Outcome{Resp: resp, Err: err}
		})
	for {
		t := time.NewTimer(quiescePoll)
		select {
		case <-ctx.Done():
			t.Stop()
			return baseobj.Response{}, ctx.Err()
		case out := <-done:
			t.Stop()
			return out.Resp, out.Err
		case <-t.C:
			if rt.srv.Crashed() {
				return baseobj.Response{}, fmt.Errorf("fabric: server %d crashed mid-delivery", rt.server)
			}
		}
	}
}

// drainParked force-completes the ops the gate had parked on a now-frozen
// lane, in ascending token order. The two phases must diverge — see
// release: a PhaseApply op never linearized (retryable error), a
// PhaseRespond op did (its real response).
func (f *Fabric) drainParked(parked []*heldOp) {
	sort.Slice(parked, func(i, j int) bool { return parked[i].ev.Token < parked[j].ev.Token })
	for _, h := range parked {
		f.emit(TraceRelease, &h.ev, h.ev.Server)
		switch h.phase {
		case PhaseApply:
			h.call.complete(Outcome{Err: viewChangedErr(h.ev.Server)})
		case PhaseRespond:
			f.emit(TraceRespond, &h.ev, h.ev.Server)
			h.call.complete(Outcome{Resp: h.resp})
		}
	}
}

// awaitQuiesce waits until the frozen lane has no operation on the wire.
// Every such op was admitted before the freeze, so it completes in the old
// view — unless the server crashes, which moves its in-flight ops to
// dropped (not completed): the count still reaches zero, so the crash is
// detected explicitly, before and after the wait, and reported as an
// error the coordinator turns into a clean abort.
func (f *Fabric) awaitQuiesce(ctx context.Context, l *lane, srv *cluster.Server) error {
	for l.inflightCount() > 0 {
		if srv.Crashed() {
			return fmt.Errorf("server %d crashed mid-drain (its in-flight ops are dropped, not completed)", l.server)
		}
		t := time.NewTimer(quiescePoll)
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("quiesce (%d in flight): %w", l.inflightCount(), ctx.Err())
		case <-t.C:
		}
	}
	if srv.Crashed() {
		return fmt.Errorf("server %d crashed mid-drain (its state is lost)", l.server)
	}
	return nil
}

// fetchState returns an object's authoritative state at the freeze point
// and seals the local copy so no write can land behind the transfer.
//
// For local-state backends (in-process, latency) the seal IS the fetch: the
// snapshot and the rejection of later writes are atomic under the object's
// mutex. For external-store backends (ObjectMirror — the network lane) the
// local copy is only a placeholder; the authoritative state lives in the
// storage node and is read over the still-open connection. The read is
// sound because the lane has quiesced and its freeze rejects new sends, so
// the node can receive no further write for this fabric's objects before
// the connection closes. A server crashing mid-fetch fails the read
// instead of hanging it — the caller rolls the seal back.
func (f *Fabric) fetchState(ctx context.Context, l *lane, srv *cluster.Server, o baseobj.Object) (baseobj.State, error) {
	var local baseobj.State
	switch sealer := o.(type) {
	case baseobj.StateSealer:
		local = sealer.SealState()
	case baseobj.Sealer:
		local = baseobj.State{Val: sealer.Seal()}
	default:
		return baseobj.State{}, fmt.Errorf("object %d (%T) does not support state transfer", o.ID(), o)
	}
	if _, remote := l.backend.(ObjectMirror); !remote {
		return local, nil
	}
	inv, err := stateReadInv(o.Kind())
	if err != nil {
		return local, err
	}
	// The fetch is a real wire delivery with a synthetic client identity —
	// it bypasses routing, gating, and in-flight bookkeeping because the
	// lane is frozen for everyone else.
	ev := TriggerEvent{
		Token:  f.nextToken.Add(1),
		Client: types.ClientID(-1),
		Object: o.ID(),
		Server: l.server,
		Inv:    inv,
	}
	done := make(chan Outcome, 1)
	l.backend.Deliver(ev,
		func() (baseobj.Response, error) {
			return baseobj.Response{}, fmt.Errorf("fabric: state fetch for object %d applied locally on a remote-state backend", o.ID())
		},
		func(resp baseobj.Response, err error) {
			done <- Outcome{Resp: resp, Err: err}
		})
	for {
		t := time.NewTimer(quiescePoll)
		select {
		case <-ctx.Done():
			t.Stop()
			return local, ctx.Err()
		case out := <-done:
			t.Stop()
			if out.Err != nil {
				return local, out.Err
			}
			return baseobj.State{Val: out.Resp.Val, Data: out.Resp.Data, Frags: out.Resp.Frags}, nil
		case <-t.C:
			if srv.Crashed() {
				return local, fmt.Errorf("server %d crashed mid-fetch (object %d)", l.server, o.ID())
			}
		}
	}
}

// stateReadInv builds the invocation that reads an object's full state
// without mutating it. Registers and max-registers have plain reads (their
// responses carry the payload bytes alongside the TSValue); a fragment
// store's OpGetFrags returns its commit watermark plus every fragment; a
// CAS cell's state is observed via a compare that can never succeed (no
// writer ID is negative), whose response carries the previous — i.e.
// current — value.
func stateReadInv(kind baseobj.Kind) (baseobj.Invocation, error) {
	switch kind {
	case baseobj.KindRegister:
		return baseobj.Invocation{Op: baseobj.OpRead}, nil
	case baseobj.KindMaxRegister:
		return baseobj.Invocation{Op: baseobj.OpReadMax}, nil
	case baseobj.KindCAS:
		probe := types.TSValue{TS: math.MaxUint64, Writer: -1, Val: -1}
		return baseobj.Invocation{Op: baseobj.OpCAS, Exp: probe, New: probe}, nil
	case baseobj.KindFragStore:
		return baseobj.Invocation{Op: baseobj.OpGetFrags}, nil
	default:
		return baseobj.Invocation{}, fmt.Errorf("fabric: no state read for object kind %v", kind)
	}
}
