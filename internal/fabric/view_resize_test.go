package fabric

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// maxEnv builds an n-server fabric with one max-register per server
// (max-registers transfer and re-seed under every transition).
func maxEnv(t *testing.T, n int, opts ...Option) (*Fabric, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(n)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, n)
	for s := 0; s < n; s++ {
		if objs[s], err = c.PlaceMaxRegister(types.ServerID(s)); err != nil {
			t.Fatal(err)
		}
	}
	fab := New(c, opts...)
	t.Cleanup(func() { fab.Close() })
	return fab, objs
}

// latencyEnv is maxEnv on the latency lane.
func latencyEnv(t *testing.T, n int, laneSeed int64) (*Fabric, []types.ObjectID) {
	t.Helper()
	return maxEnv(t, n, WithLanes(LatencyLanes(laneSeed, LatencyProfile{Jitter: 50 * time.Microsecond})))
}

func writeMaxInv(ts uint64, v types.Value) baseobj.Invocation {
	return baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: types.TSValue{TS: ts, Val: v}}
}

func readMaxInv() baseobj.Invocation {
	return baseobj.Invocation{Op: baseobj.OpReadMax}
}

// startRetryWriters launches writers hammering objs through RetryView.
// Each failure lands on errs; close stop and call wait to finish.
func startRetryWriters(ctx context.Context, t *testing.T, fab *Fabric, objs []types.ObjectID, writers int) (chan struct{}, chan error, func()) {
	t.Helper()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ts := uint64(1); ; ts++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := objs[int(ts)%len(objs)]
				inv := baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: types.TSValue{TS: ts, Writer: types.ClientID(w), Val: types.Value(ts)}}
				if _, err := RetryView(ctx, func() (types.TSValue, error) {
					o := waitOutcome(t, fab.Trigger(types.ClientID(w), obj, inv))
					return o.Resp.Val, o.Err
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	return stop, errs, wg.Wait
}

// TestResizeGrowAndShrink commits a two-joiner grow and then a two-leaver
// shrink, each as one epoch bump: values survive the transfers, no leave
// costs a crash, and Moved/Duration report honestly.
func TestResizeGrowAndShrink(t *testing.T) {
	fab, objs := testEnv(t, nil)
	c := fab.Cluster()
	ctx := context.Background()
	for i, obj := range objs {
		if o := mustOutcome(t, fab.Trigger(0, obj, writeInv(uint64(i+1), types.Value(100+i)))); o.Err != nil {
			t.Fatalf("seed write %d: %v", i, o.Err)
		}
	}
	epochBefore := c.Epoch()

	grow, err := fab.Resize(ctx, ResizeSpec{Join: []LaneMaker{nil, nil}}, nil)
	if err != nil {
		t.Fatalf("grow: %v", err)
	}
	if len(grow.Joined) != 2 || grow.Joined[0] != 3 || grow.Joined[1] != 4 {
		t.Fatalf("grow joined %v, want [3 4]", grow.Joined)
	}
	if grow.Moved != 0 {
		t.Fatalf("grow moved %d objects, want 0 (nobody left)", grow.Moved)
	}
	if grow.Duration <= 0 {
		t.Fatalf("grow duration %v, want > 0", grow.Duration)
	}
	if n := c.View().N(); n != 5 {
		t.Fatalf("view N after grow = %d, want 5", n)
	}
	if c.Epoch() <= epochBefore {
		t.Fatal("epoch did not advance across the grow")
	}

	shrink, err := fab.Resize(ctx, ResizeSpec{Leave: []types.ServerID{0, 1}}, nil)
	if err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if shrink.Moved != 2 {
		t.Fatalf("shrink moved %d objects, want 2 (one per leaver)", shrink.Moved)
	}
	view := c.View()
	if view.N() != 3 {
		t.Fatalf("view N after shrink = %d, want 3", view.N())
	}
	for _, m := range view.Members {
		if m == 0 || m == 1 {
			t.Fatalf("retired server %d still in the view %v", m, view.Members)
		}
	}
	// Both batched transitions were leaves, not failures.
	if c.Crashes() != 0 {
		t.Fatalf("Crashes = %d after two clean transitions, want 0", c.Crashes())
	}
	for i, obj := range objs {
		if o := mustOutcome(t, fab.Trigger(1, obj, readInv())); o.Err != nil || o.Resp.Val.Val != types.Value(100+i) {
			t.Fatalf("read %d after resize = %+v, want val %d", i, o, 100+i)
		}
	}
}

// TestResizeChangesF: an f-only delta is a real view change — new quorum
// thresholds activate under an epoch bump with the member set untouched.
func TestResizeChangesF(t *testing.T) {
	fab, _ := testEnv(t, nil)
	c := fab.Cluster()
	epochBefore := c.Epoch()
	membersBefore := c.View().N()
	if _, err := fab.Resize(context.Background(), ResizeSpec{F: 1}, nil); err != nil {
		t.Fatalf("f-only resize: %v", err)
	}
	view := c.View()
	if view.F != 1 {
		t.Fatalf("view F = %d, want 1", view.F)
	}
	if view.N() != membersBefore {
		t.Fatalf("member count changed across an f-only resize: %d -> %d", membersBefore, view.N())
	}
	if c.Epoch() <= epochBefore {
		t.Fatal("epoch did not advance across an f-only resize")
	}
}

// TestResizeAbortsWhenLeaverCrashesMidDrain is the no-escape regression:
// the departing server crashes between the freeze and the quiesce, and the
// coordinator must detect it and abort instead of spinning forever on a
// drain that can never complete (the crashed lane's in-flight ops are
// dropped, not completed). The old view stays active minus the crash.
func TestResizeAbortsWhenLeaverCrashesMidDrain(t *testing.T) {
	fab, objs := testEnv(t, nil)
	c := fab.Cluster()
	fab.HookTransition(func() {
		if err := fab.Crash(0); err != nil {
			t.Errorf("crash inside the freeze window: %v", err)
		}
	}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := fab.Resize(ctx, ResizeSpec{Join: []LaneMaker{nil}, Leave: []types.ServerID{0}}, nil)
	if !IsResizeAborted(err) {
		t.Fatalf("resize with a mid-drain crash returned %v, want ErrResizeAborted", err)
	}
	if ctx.Err() != nil {
		t.Fatal("abort only came from the context deadline — the crash was not detected")
	}
	// Only the causing crash is spent from the fail-stop budget.
	if c.Crashes() != 1 {
		t.Fatalf("Crashes = %d, want 1", c.Crashes())
	}
	// The empty joiner was retired with the abort.
	view := c.View()
	if view.N() != 3 {
		t.Fatalf("view N after abort = %d, want 3 (empty joiner retired)", view.N())
	}
	// Survivors returned to service: their objects still answer.
	for s := 1; s <= 2; s++ {
		srv, err := c.Server(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		if srv.Departing() {
			t.Fatalf("survivor %d still departing after abort", s)
		}
		if o := mustOutcome(t, fab.Trigger(0, objs[s], writeInv(9, 77))); o.Err != nil {
			t.Fatalf("write on survivor %d after abort: %v", s, o.Err)
		}
	}
}

// TestResizeAbortsWhenTransferTargetCrashes kills the joiner inside the
// sealed-but-not-activated window — after an object's state is fetched and
// sealed, before MoveObject lands it — on both local-state lane backends
// (the TCP variant lives in the runner suite, which owns the node
// processes). The abort must roll the seal back: the object stays on its
// old server, readable and writable, and no op is lost or doubly applied.
func TestResizeAbortsWhenTransferTargetCrashes(t *testing.T) {
	t.Run("inproc", func(t *testing.T) {
		fab, objs := maxEnv(t, 3)
		testTransferTargetCrash(t, fab, objs)
	})
	t.Run("latency", func(t *testing.T) {
		fab, objs := latencyEnv(t, 3, 13)
		testTransferTargetCrash(t, fab, objs)
	})
}

func testTransferTargetCrash(t *testing.T, fab *Fabric, objs []types.ObjectID) {
	c := fab.Cluster()
	if o := waitOutcome(t, fab.Trigger(0, objs[0], writeMaxInv(5, 42))); o.Err != nil {
		t.Fatalf("seed write: %v", o.Err)
	}
	fired := false
	fab.HookTransition(nil, func(_ types.ObjectID, to types.ServerID) {
		if fired {
			return
		}
		fired = true
		if err := fab.Crash(to); err != nil {
			t.Errorf("crash of transfer target %d: %v", to, err)
		}
	})

	_, err := fab.Resize(context.Background(), ResizeSpec{Join: []LaneMaker{nil}, Leave: []types.ServerID{0}}, nil)
	if !IsResizeAborted(err) {
		t.Fatalf("resize with a crashed transfer target returned %v, want ErrResizeAborted", err)
	}
	if !fired {
		t.Fatal("beforeMove hook never fired")
	}
	if c.Crashes() != 1 {
		t.Fatalf("Crashes = %d, want 1 (only the injected crash)", c.Crashes())
	}
	// The seal rolled back: the object serves from its old server again.
	srv, err := c.Server(0)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Departing() {
		t.Fatal("server 0 still departing after abort")
	}
	if s, err := c.Delta(objs[0]); err != nil || s != 0 {
		t.Fatalf("Delta(%d) = %d, %v; want 0 (object stayed put)", objs[0], s, err)
	}
	if o := waitOutcome(t, fab.Trigger(1, objs[0], readMaxInv())); o.Err != nil || o.Resp.Val.Val != 42 {
		t.Fatalf("read after abort = %+v, want the sealed-then-restored val 42", o)
	}
	if o := waitOutcome(t, fab.Trigger(0, objs[0], writeMaxInv(6, 43))); o.Err != nil {
		t.Fatalf("write after abort: %v", o.Err)
	}
	if o := waitOutcome(t, fab.Trigger(1, objs[0], readMaxInv())); o.Err != nil || o.Resp.Val.Val != 43 {
		t.Fatalf("read after post-abort write = %+v, want val 43", o)
	}
}

// TestResizeAbortUnderLatencyLaneLoad drives the mid-drain abort with real
// in-flight operations on the latency lane: concurrent RetryView writers
// keep running through the aborted transition, and none of their ops may
// fail — an op caught by the freeze or the rollback retries transparently.
func TestResizeAbortUnderLatencyLaneLoad(t *testing.T) {
	fab, objs := latencyEnv(t, 3, 11)
	c := fab.Cluster()
	fab.HookTransition(func() {
		_ = fab.Crash(0)
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Writers avoid server 0's object: ops routed at a crashed server hang
	// by design, and this test is about the abort path, not crash hangs.
	stop, errs, wait := startRetryWriters(ctx, t, fab, objs[1:], 4)
	_, err := fab.Resize(ctx, ResizeSpec{Join: []LaneMaker{nil}, Leave: []types.ServerID{0}}, nil)
	close(stop)
	wait()
	if !IsResizeAborted(err) {
		t.Fatalf("resize returned %v, want ErrResizeAborted", err)
	}
	select {
	case err := <-errs:
		t.Fatalf("client op failed across the aborted transition: %v", err)
	default:
	}
	if c.Crashes() != 1 {
		t.Fatalf("Crashes = %d, want 1", c.Crashes())
	}
	if n := c.View().N(); n != 3 {
		t.Fatalf("view N after abort = %d, want 3", n)
	}
}
