package fabric

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// testEnv builds a 3-server cluster with one register per server and a
// fabric over it.
func testEnv(t *testing.T, gate Gate) (*Fabric, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, 3)
	for s := 0; s < 3; s++ {
		obj, err := c.PlaceRegister(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = obj
	}
	var opts []Option
	if gate != nil {
		opts = append(opts, WithGate(gate))
	}
	return New(c, opts...), objs
}

func writeInv(ts uint64, v types.Value) baseobj.Invocation {
	return baseobj.Invocation{Op: baseobj.OpWrite, Arg: types.TSValue{TS: ts, Val: v}}
}

func readInv() baseobj.Invocation {
	return baseobj.Invocation{Op: baseobj.OpRead}
}

func mustOutcome(t *testing.T, call *Call) Outcome {
	t.Helper()
	o, ok := call.Outcome()
	if !ok {
		t.Fatalf("call %d has no outcome", call.Token())
	}
	return o
}

func TestPassThrough(t *testing.T) {
	fab, objs := testEnv(t, nil)
	w := fab.Trigger(0, objs[0], writeInv(1, 10))
	o := mustOutcome(t, w)
	if o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}
	r := fab.Trigger(1, objs[0], readInv())
	o = mustOutcome(t, r)
	if o.Err != nil || o.Resp.Val.Val != 10 {
		t.Fatalf("read = %+v, want val 10", o)
	}
	if fab.Triggers() != 2 {
		t.Errorf("Triggers = %d, want 2", fab.Triggers())
	}
	if used := fab.UsedObjects(); len(used) != 1 || used[0] != objs[0] {
		t.Errorf("UsedObjects = %v, want [%d]", used, objs[0])
	}
}

func TestHoldApplyDefersEffect(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op == baseobj.OpWrite && ev.Inv.Arg.Val == 10 {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)

	held := fab.Trigger(0, objs[0], writeInv(1, 10))
	if _, ok := held.Outcome(); ok {
		t.Fatal("held write completed")
	}
	// The held write has NOT taken effect.
	read1 := mustOutcome(t, fab.Trigger(1, objs[0], readInv()))
	if read1.Resp.Val.Val != 0 {
		t.Fatalf("read saw held write: %v", read1.Resp.Val)
	}
	// A newer write lands.
	if o := mustOutcome(t, fab.Trigger(1, objs[0], writeInv(2, 20))); o.Err != nil {
		t.Fatal(o.Err)
	}
	// Releasing the held write applies it NOW, erasing the newer value:
	// the covering-write semantics of the lower bound.
	if err := fab.Release(held.Token()); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if o := mustOutcome(t, held); o.Err != nil {
		t.Fatalf("released write outcome: %v", o.Err)
	}
	read2 := mustOutcome(t, fab.Trigger(1, objs[0], readInv()))
	if read2.Resp.Val.Val != 10 {
		t.Fatalf("after release read = %v, want the stale 10", read2.Resp.Val)
	}
}

func TestHoldRespondAppliesButDelays(t *testing.T) {
	gate := GateFuncs{Respond: func(ev TriggerEvent, _ baseobj.Response) Decision {
		if ev.Inv.Op == baseobj.OpWrite {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	held := fab.Trigger(0, objs[0], writeInv(1, 10))
	if _, ok := held.Outcome(); ok {
		t.Fatal("held-respond write completed")
	}
	// The op HAS taken effect, its client just doesn't know.
	read := mustOutcome(t, fab.Trigger(1, objs[0], readInv()))
	if read.Resp.Val.Val != 10 {
		t.Fatalf("read = %v, want 10 (respond-held write must be applied)", read.Resp.Val)
	}
	if err := fab.Release(held.Token()); err != nil {
		t.Fatal(err)
	}
	if o := mustOutcome(t, held); o.Err != nil {
		t.Fatal(o.Err)
	}
}

func TestPendingAndCoveredAccounting(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	fab.Trigger(0, objs[0], writeInv(1, 10))
	fab.Trigger(0, objs[1], writeInv(1, 10))
	fab.Trigger(0, objs[2], readInv()) // reads pass

	pending := fab.Pending()
	if len(pending) != 2 {
		t.Fatalf("Pending = %d ops, want 2", len(pending))
	}
	for _, p := range pending {
		if p.Phase != PhaseApply {
			t.Errorf("pending phase = %v, want PhaseApply", p.Phase)
		}
	}
	covered := fab.CoveredObjects()
	if len(covered) != 2 || covered[0] != objs[0] || covered[1] != objs[1] {
		t.Fatalf("CoveredObjects = %v, want [%d %d]", covered, objs[0], objs[1])
	}
}

func TestReleaseErrors(t *testing.T) {
	fab, _ := testEnv(t, nil)
	if err := fab.Release(999); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("Release(999) err = %v, want ErrNotHeld", err)
	}
}

func TestReleaseWhere(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	c0 := fab.Trigger(0, objs[0], writeInv(1, 10))
	c1 := fab.Trigger(1, objs[1], writeInv(1, 11))
	released := fab.ReleaseWhere(func(op PendingOp) bool { return op.Event.Client == 0 })
	if released != 1 {
		t.Fatalf("released %d, want 1", released)
	}
	if _, ok := c0.Outcome(); !ok {
		t.Error("client 0 op not released")
	}
	if _, ok := c1.Outcome(); ok {
		t.Error("client 1 op released unexpectedly")
	}
}

func TestCrashDropsHeldAndFutureOps(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() && ev.Server == 0 {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	held := fab.Trigger(0, objs[0], writeInv(1, 10))
	if err := fab.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	// The held op is dropped: releasing it is now impossible and it stays
	// pending forever.
	if err := fab.Release(held.Token()); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("release after crash err = %v, want ErrNotHeld", err)
	}
	if _, ok := held.Outcome(); ok {
		t.Error("op on crashed server completed")
	}
	// New ops on the crashed server never complete either.
	late := fab.Trigger(1, objs[0], readInv())
	if _, ok := late.Outcome(); ok {
		t.Error("trigger on crashed server completed")
	}
	// Both remain visible as pending (the write also covers).
	var droppedWrites int
	for _, p := range fab.Pending() {
		if p.Phase == PhaseDropped && p.Event.Inv.Op.IsWrite() {
			droppedWrites++
		}
	}
	if droppedWrites != 1 {
		t.Errorf("dropped writes = %d, want 1", droppedWrites)
	}
	// Other servers still work.
	if o := mustOutcome(t, fab.Trigger(1, objs[1], readInv())); o.Err != nil {
		t.Errorf("live server read: %v", o.Err)
	}
}

func TestTriggerUnknownObject(t *testing.T) {
	fab, _ := testEnv(t, nil)
	call := fab.Trigger(0, 999, readInv())
	o, ok := call.Outcome()
	if !ok || o.Err == nil {
		t.Fatalf("unknown object outcome = %+v ok=%v, want error", o, ok)
	}
}

func TestOnCompleteAfterCompletion(t *testing.T) {
	fab, objs := testEnv(t, nil)
	call := fab.Trigger(0, objs[0], writeInv(1, 10))
	fired := false
	call.OnComplete(func(Outcome) { fired = true })
	if !fired {
		t.Fatal("OnComplete on a completed call must fire immediately")
	}
}

func TestAwaitN(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Server == 2 && ev.Inv.Op.IsWrite() {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	calls := []*Call{
		fab.Trigger(0, objs[0], writeInv(1, 10)),
		fab.Trigger(0, objs[1], writeInv(1, 10)),
		fab.Trigger(0, objs[2], writeInv(1, 10)), // held
	}
	done, err := AwaitN(context.Background(), calls, 2)
	if err != nil {
		t.Fatalf("AwaitN: %v", err)
	}
	if len(done) != 2 {
		t.Fatalf("got %d completions, want 2", len(done))
	}

	// Waiting for a fresh held call must time out. (calls[2] already has
	// AwaitN's callback armed, and OnComplete enforces single
	// registration, so a fresh held call is needed here.)
	held := fab.Trigger(0, objs[2], writeInv(2, 11))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := AwaitN(ctx, []*Call{held}, 1); err == nil {
		t.Fatal("AwaitN on held call succeeded, want ctx error")
	}

	// Degenerate arguments. Completed calls re-fire immediately, so using
	// calls[:2] again is legal.
	if _, err := AwaitN(context.Background(), calls, 0); err != nil {
		t.Errorf("AwaitN(0): %v", err)
	}
	if _, err := AwaitN(context.Background(), calls[:2], 3); err == nil {
		t.Error("AwaitN(3 of 2) succeeded, want error")
	}
}

func TestOnCompleteDoubleRegistrationPanics(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	held := fab.Trigger(0, objs[0], writeInv(1, 10))
	held.OnComplete(func(Outcome) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second OnComplete on a pending call did not panic")
		}
	}()
	held.OnComplete(func(Outcome) {})
}

func TestOnCompleteAfterCompletionMayReRegister(t *testing.T) {
	fab, objs := testEnv(t, nil)
	call := fab.Trigger(0, objs[0], writeInv(1, 10))
	for i := 0; i < 2; i++ {
		fired := false
		call.OnComplete(func(Outcome) { fired = true })
		if !fired {
			t.Fatalf("OnComplete registration %d on completed call did not fire", i)
		}
	}
}

func TestReleasedOpOnCrashedServerIsDropped(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() {
			return Hold
		}
		return Pass
	}}
	fab, objs := testEnv(t, gate)
	held := fab.Trigger(0, objs[0], writeInv(1, 10))
	// Crash the server through the cluster directly, bypassing the
	// fabric's own bookkeeping, then release: the fabric must notice.
	if err := fab.Cluster().Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := fab.Release(held.Token()); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, ok := held.Outcome(); ok {
		t.Error("released op on crashed server completed")
	}
}

func TestYieldGatePasses(t *testing.T) {
	g := &YieldGate{Yields: 1}
	fab, objs := testEnv(t, g)
	if o := mustOutcome(t, fab.Trigger(0, objs[0], writeInv(1, 10))); o.Err != nil {
		t.Fatalf("write through yield gate: %v", o.Err)
	}
	if g.Ops() != 1 {
		t.Errorf("Ops = %d, want 1", g.Ops())
	}
}

func TestPhaseStrings(t *testing.T) {
	for _, p := range []Phase{PhaseApply, PhaseRespond, PhaseDropped, Phase(99)} {
		if p.String() == "" {
			t.Errorf("Phase(%d).String() empty", int(p))
		}
	}
}
