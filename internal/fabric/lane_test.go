package fabric

import (
	"sync"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// laneEnv builds a 3-server cluster with one register per server and a
// fabric using the given lane maker.
func laneEnv(t *testing.T, maker LaneMaker, gate Gate) (*Fabric, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, 3)
	for s := 0; s < 3; s++ {
		obj, err := c.PlaceRegister(types.ServerID(s))
		if err != nil {
			t.Fatal(err)
		}
		objs[s] = obj
	}
	opts := []Option{WithLanes(maker)}
	if gate != nil {
		opts = append(opts, WithGate(gate))
	}
	fab := New(c, opts...)
	t.Cleanup(func() { fab.Close() })
	return fab, objs
}

// awaitOutcome blocks until the call completes or the deadline passes.
func awaitOutcome(t *testing.T, call *Call) Outcome {
	t.Helper()
	done := make(chan Outcome, 1)
	call.OnComplete(func(o Outcome) { done <- o })
	select {
	case o := <-done:
		return o
	case <-time.After(5 * time.Second):
		t.Fatalf("call %d never completed", call.Token())
		return Outcome{}
	}
}

var testProfile = LatencyProfile{
	Base:      10 * time.Microsecond,
	Jitter:    200 * time.Microsecond,
	SpikeProb: 0.2,
	Spike:     500 * time.Microsecond,
}

// TestLatencyLaneDeliversAsynchronously: ops on a latency lane complete
// with full read-your-write semantics, just later.
func TestLatencyLaneDeliversAsynchronously(t *testing.T) {
	fab, objs := laneEnv(t, LatencyLanes(1, testProfile), nil)
	w := fab.Trigger(0, objs[0], writeInv(1, 10))
	if o := awaitOutcome(t, w); o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}
	r := fab.Trigger(1, objs[0], readInv())
	if o := awaitOutcome(t, r); o.Err != nil || o.Resp.Val.Val != 10 {
		t.Fatalf("read = %+v, want val 10", o)
	}
}

// TestLatencyLaneInFlightPending: between trigger and delivery the op is
// visible as a pending in-flight op, and a pending in-flight write covers
// its register — the paper's accounting must not lose ops on the wire.
func TestLatencyLaneInFlightPending(t *testing.T) {
	slow := LatencyProfile{Base: 200 * time.Millisecond}
	fab, objs := laneEnv(t, LatencyLanes(1, slow), nil)
	call := fab.Trigger(0, objs[0], writeInv(1, 10))
	pending := fab.Pending()
	if len(pending) != 1 || pending[0].Phase != PhaseInFlight {
		t.Fatalf("Pending = %+v, want one in-flight op", pending)
	}
	if covered := fab.CoveredObjects(); len(covered) != 1 || covered[0] != objs[0] {
		t.Fatalf("CoveredObjects = %v, want [%d]", covered, objs[0])
	}
	if o := awaitOutcome(t, call); o.Err != nil {
		t.Fatal(o.Err)
	}
	if pending := fab.Pending(); len(pending) != 0 {
		t.Fatalf("Pending after completion = %+v, want none", pending)
	}
}

// TestLatencyLaneCrashDropsInFlight: a crash while ops are on the wire
// must drop them — the late timer delivery must neither complete the call
// nor mutate the crashed server's object.
func TestLatencyLaneCrashDropsInFlight(t *testing.T) {
	slow := LatencyProfile{Base: 50 * time.Millisecond}
	fab, objs := laneEnv(t, LatencyLanes(1, slow), nil)
	call := fab.Trigger(0, objs[0], writeInv(1, 10))
	if err := fab.Crash(0); err != nil {
		t.Fatal(err)
	}
	var dropped int
	for _, p := range fab.Pending() {
		if p.Phase == PhaseDropped {
			dropped++
		}
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
	// Wait past the delivery delay: the op must stay incomplete and the
	// object unmutated.
	time.Sleep(120 * time.Millisecond)
	if _, ok := call.Outcome(); ok {
		t.Fatal("in-flight op on crashed server completed")
	}
	obj, err := fab.Cluster().Object(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Peek(); got != types.ZeroTSValue {
		t.Fatalf("crashed server state mutated by late delivery: %v", got)
	}
}

// TestLatencyLaneComposesWithGate: holds and releases work unchanged on an
// asynchronous backend — a released apply-held op re-enters the lane and
// completes after its delivery delay.
func TestLatencyLaneComposesWithGate(t *testing.T) {
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() {
			return Hold
		}
		return Pass
	}}
	fab, objs := laneEnv(t, LatencyLanes(7, testProfile), gate)
	held := fab.Trigger(0, objs[0], writeInv(1, 10))
	if _, ok := held.Outcome(); ok {
		t.Fatal("held write completed")
	}
	if pending := fab.Pending(); len(pending) != 1 || pending[0].Phase != PhaseApply {
		t.Fatalf("Pending = %+v, want one held-apply op", pending)
	}
	if err := fab.Release(held.Token()); err != nil {
		t.Fatal(err)
	}
	if o := awaitOutcome(t, held); o.Err != nil {
		t.Fatalf("released write: %v", o.Err)
	}
	r := fab.Trigger(1, objs[0], readInv())
	if o := awaitOutcome(t, r); o.Resp.Val.Val != 10 {
		t.Fatalf("read = %v, want 10", o.Resp.Val)
	}
}

// TestLatencyLaneSeededReplay: the same lane seed must produce the same
// delay schedule — experiments replay from one number.
func TestLatencyLaneSeededReplay(t *testing.T) {
	sample := func() []time.Duration {
		l := NewLatencyLane(99, testProfile)
		ds := make([]time.Duration, 32)
		for i := range ds {
			ds[i] = l.delay()
		}
		return ds
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	for i := range a {
		if a[i] < testProfile.Base {
			t.Fatalf("delay %d = %v below base %v", i, a[i], testProfile.Base)
		}
	}
}

// TestLatencyLaneParallelClients hammers a latency fabric from concurrent
// clients (run under -race in CI): completions arrive on timer goroutines
// while other clients trigger, release, and read.
func TestLatencyLaneParallelClients(t *testing.T) {
	fast := LatencyProfile{Jitter: 50 * time.Microsecond}
	fab, objs := laneEnv(t, LatencyLanes(3, fast), nil)
	var wg sync.WaitGroup
	for cl := 0; cl < 8; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				obj := objs[(cl+i)%len(objs)]
				var inv baseobj.Invocation
				if i%2 == 0 {
					inv = writeInv(uint64(i+1), types.Value(cl*100+i))
				} else {
					inv = readInv()
				}
				call := fab.Trigger(types.ClientID(cl), obj, inv)
				done := make(chan struct{})
				call.OnComplete(func(Outcome) { close(done) })
				<-done
			}
		}(cl)
	}
	wg.Wait()
	if got := fab.Triggers(); got != 8*50 {
		t.Fatalf("Triggers = %d, want %d", got, 8*50)
	}
}

// customSyncLane is a minimal third-party backend: synchronous but not the
// in-process type, so it exercises the generic in-flight delivery path.
type customSyncLane struct{ delivered int }

func (c *customSyncLane) Deliver(_ TriggerEvent, apply ApplyFunc, complete CompleteFunc) {
	c.delivered++
	complete(apply())
}

func (c *customSyncLane) Close() error { return nil }

// TestCustomLaneBackend: the generic path must behave identically to the
// in-process fast path for a synchronous custom backend.
func TestCustomLaneBackend(t *testing.T) {
	lanes := make(map[types.ServerID]*customSyncLane)
	fab, objs := laneEnv(t, func(s types.ServerID) Lane {
		l := &customSyncLane{}
		lanes[s] = l
		return l
	}, nil)
	if o := mustOutcome(t, fab.Trigger(0, objs[1], writeInv(1, 5))); o.Err != nil {
		t.Fatal(o.Err)
	}
	if o := mustOutcome(t, fab.Trigger(1, objs[1], readInv())); o.Resp.Val.Val != 5 {
		t.Fatalf("read = %v, want 5", o.Resp.Val)
	}
	if lanes[1].delivered != 2 {
		t.Fatalf("lane 1 delivered %d ops, want 2", lanes[1].delivered)
	}
	if lanes[0].delivered+lanes[2].delivered != 0 {
		t.Fatal("ops leaked onto other servers' lanes")
	}
}
