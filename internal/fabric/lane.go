package fabric

import (
	"sync"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// Lane is the backend of one server's dispatch shard: the transport that
// carries a gate-passed low-level operation to the server's base object and
// its response back. The paper's model only requires that the medium be
// asynchronous — an operation's effect and response may each be delayed
// arbitrarily — so a lane backend is free to be a synchronous function call
// (InProcLane), a delay distribution (LatencyLane), or a real network
// connection to a storage node (internal/lanenet).
//
// Everything above the lane is backend-agnostic: the Gate adversary, the
// held-op and crash-drop accounting, the quorum round engine, and the five
// constructions all compose with any backend. The fabric keeps the paper's
// fault model intact by wrapping every delivery: operations for crashed
// servers are dropped (never delivered, never responded), whichever side of
// the transport the crash is observed on.
type Lane interface {
	// Deliver carries one operation to the server and invokes complete
	// exactly once with its response — either by calling apply at the
	// moment the operation reaches the server (local-state backends: that
	// call is the linearization point) or by obtaining the response
	// elsewhere (network backends apply remotely and relay it). Deliver
	// must not block; asynchronous backends invoke complete from their own
	// goroutines. A backend whose transport has failed never invokes
	// complete: the operation stays pending forever, exactly like an
	// operation on a crashed server.
	Deliver(ev TriggerEvent, apply ApplyFunc, complete CompleteFunc)
	// Close releases backend resources (connections, timers). The fabric
	// closes every lane on Fabric.Close.
	Close() error
}

// LaneOp is one prepared delivery: the trigger event plus the fabric-built
// apply and completion closures (crash checks and in-flight claim folded
// in). Group-capable backends receive whole rounds as []LaneOp.
type LaneOp struct {
	// Ev is the trigger event.
	Ev TriggerEvent
	// Apply linearizes the op against the server's local base object.
	Apply ApplyFunc
	// Complete delivers the op's response back into the fabric.
	Complete CompleteFunc
}

// GroupLane is implemented by backends that accept a whole batch of
// operations in one hand-off — an event-loop lane turns the group into a
// single mailbox message, a network lane into a single buffered flush. The
// group carries no extra semantics: delivering it is equivalent to calling
// Deliver once per op, just cheaper.
type GroupLane interface {
	Lane
	// DeliverGroup delivers every op of the group. Like Deliver it must
	// not block indefinitely on op completion; bounded-mailbox backends may
	// block briefly for backpressure.
	DeliverGroup(ops []LaneOp)
}

// ScanLane is implemented by backends that can answer an all-read group
// from one consistent snapshot: the ops apply back-to-back with no other
// operation of the same server interleaved, so the responses form a
// consistent cut of the server's objects. The fabric hands ScanLane the
// gate-passed members of a TriggerScan; backends without the interface fall
// back to per-op delivery (losing only the snapshot guarantee, never
// correctness — a scan is still a set of independent reads).
type ScanLane interface {
	Lane
	// DeliverScan delivers an all-read group atomically.
	DeliverScan(ops []LaneOp)
}

// ApplyFunc linearizes an operation against the server's local base object.
// The fabric builds it with the crash check folded in: applying an op whose
// server has crashed returns errCrashedDrop, and the fabric maps that to
// the dropped (pending forever) state rather than an error response.
type ApplyFunc func() (baseobj.Response, error)

// CompleteFunc delivers an operation's response back into the fabric, which
// routes it through the respond gate. It must be invoked at most once.
type CompleteFunc func(resp baseobj.Response, err error)

// LaneMaker builds the dispatch backend for one server. The fabric calls it
// once per server at construction time.
type LaneMaker func(server types.ServerID) Lane

// CrashReporter is implemented by lane backends whose transport can fail on
// its own (a lost connection, a dead storage node). The fabric installs a
// hook that crashes the lane's server, mapping transport failure onto the
// paper's fail-stop server model: every in-flight and future operation on
// the lane becomes PhaseDropped.
type CrashReporter interface {
	// SetCrashHook installs the transport-failure callback. The backend
	// must invoke it at most once, from any goroutine, and must stop
	// delivering (and completing) operations from that point on.
	SetCrashHook(fn func())
}

// ObjectMirror is implemented by lane backends that replicate object
// placement to an external store (the network lane). The fabric calls
// MirrorObject before the first operation on an object is delivered through
// the lane, so the remote store can host a matching object.
type ObjectMirror interface {
	MirrorObject(obj baseobj.Object)
}

// WithLanes selects the lane backend per server; the default is the
// in-process lane. The maker runs once per server during New.
func WithLanes(maker LaneMaker) Option {
	return func(f *Fabric) {
		if maker != nil {
			f.laneMaker = maker
		}
	}
}

// InProcLane is the default backend: the operation reaches the base object
// by a function call, synchronously inside Trigger. It is the
// zero-overhead, zero-regression backend the exhaustive sweeps and the
// dispatch-throughput benchmarks run on; the fabric short-circuits its
// in-flight bookkeeping for this backend, so the hot path is identical to
// a direct Apply.
type InProcLane struct{}

// Deliver implements Lane.
func (InProcLane) Deliver(_ TriggerEvent, apply ApplyFunc, complete CompleteFunc) {
	complete(apply())
}

// Close implements Lane.
func (InProcLane) Close() error { return nil }

// lane is one server's dispatch shard: the backend plus every piece of
// mutable fabric state attributable to that server — held, in-flight, and
// dropped operations — so operations on different servers never contend.
type lane struct {
	server  types.ServerID
	backend Lane
	// inproc short-circuits the generic delivery path for the default
	// backend: InProcLane completes inline, so no in-flight bookkeeping
	// (one map insert + delete per op) is needed.
	inproc bool

	mu       sync.Mutex
	held     map[uint64]*heldOp
	inflight map[uint64]*heldOp
	dropped  map[uint64]*heldOp
	// departing freezes the lane for a view change. It lives under mu —
	// not in an atomic — deliberately: putInflight checks it under the
	// same lock the coordinator sets it under, so after setDeparting
	// returns, every op is either already in the in-flight index (the
	// coordinator awaits it) or will fail its insert (and retry in the
	// new view). No op can slip between the freeze and the state fetch.
	departing bool
}

// newLane builds one server's dispatch shard.
func newLane(server types.ServerID, backend Lane) *lane {
	_, inproc := backend.(InProcLane)
	return &lane{
		server:   server,
		backend:  backend,
		inproc:   inproc,
		held:     make(map[uint64]*heldOp),
		inflight: make(map[uint64]*heldOp),
		dropped:  make(map[uint64]*heldOp),
	}
}

// putInflight records an op handed to an asynchronous backend. It returns
// false when the lane is frozen for a view change: the op was not recorded
// and must complete as a retryable view-change error instead.
func (l *lane) putInflight(h *heldOp) bool {
	l.mu.Lock()
	if l.departing {
		l.mu.Unlock()
		return false
	}
	l.inflight[h.ev.Token] = h
	l.mu.Unlock()
	return true
}

// setDeparting freezes the lane for a view change and returns the ops
// parked by the gate (held) for the coordinator to force-complete.
func (l *lane) setDeparting() []*heldOp {
	l.mu.Lock()
	l.departing = true
	parked := make([]*heldOp, 0, len(l.held))
	for token, h := range l.held {
		delete(l.held, token)
		parked = append(parked, h)
	}
	l.mu.Unlock()
	return parked
}

// clearDeparting lifts a freeze set by setDeparting: an aborted transition
// returns the lane to service. Taken under the same lock as the freeze, so
// the unfreeze is as clean as the freeze was.
func (l *lane) clearDeparting() {
	l.mu.Lock()
	l.departing = false
	l.mu.Unlock()
}

// inflightCount reports how many ops are on the wire.
func (l *lane) inflightCount() int {
	l.mu.Lock()
	n := len(l.inflight)
	l.mu.Unlock()
	return n
}

// takeInflight claims the in-flight op with the given token. It returns
// false when the op is gone — a crash drain already moved it to dropped —
// in which case the caller must discard the completion: the claim is what
// makes completion and crash-drop mutually exclusive.
func (l *lane) takeInflight(token uint64) bool {
	l.mu.Lock()
	_, ok := l.inflight[token]
	if ok {
		delete(l.inflight, token)
	}
	l.mu.Unlock()
	return ok
}
