package fabric

import (
	"fmt"
	"sync/atomic"

	"repro/internal/types"
)

// TraceKind enumerates the low-level lifecycle events a tracer observes.
type TraceKind int

const (
	// TraceTrigger: a client triggered a low-level operation.
	TraceTrigger TraceKind = iota + 1
	// TraceApply: the operation took effect (linearized).
	TraceApply
	// TraceHoldApply: the environment held the op before it took effect.
	TraceHoldApply
	// TraceHoldRespond: the environment held the op's response.
	TraceHoldRespond
	// TraceRespond: the response was delivered to the client.
	TraceRespond
	// TraceRelease: a held op was released by the environment.
	TraceRelease
	// TraceDrop: the op was dropped (its server crashed); it will stay
	// pending forever.
	TraceDrop
	// TraceCrash: a server crashed.
	TraceCrash
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceTrigger:
		return "trigger"
	case TraceApply:
		return "apply"
	case TraceHoldApply:
		return "hold-apply"
	case TraceHoldRespond:
		return "hold-respond"
	case TraceRespond:
		return "respond"
	case TraceRelease:
		return "release"
	case TraceDrop:
		return "drop"
	case TraceCrash:
		return "crash"
	default:
		return fmt.Sprintf("trace(%d)", int(k))
	}
}

// TraceEvent is one observed lifecycle event. For TraceCrash only Server is
// meaningful.
type TraceEvent struct {
	// Seq is a global sequence number establishing total order.
	Seq uint64
	// Kind is the lifecycle stage.
	Kind TraceKind
	// Op is the low-level operation (zero for TraceCrash).
	Op TriggerEvent
	// Server is the crashed server for TraceCrash.
	Server types.ServerID
}

// Tracer observes fabric events. Implementations must be safe for
// concurrent use and non-blocking; they are called on client goroutines.
type Tracer interface {
	Trace(ev TraceEvent)
}

// WithTracer installs an event tracer on the fabric.
func WithTracer(tr Tracer) Option {
	return func(f *Fabric) { f.tracer = tr }
}

// traceSeq is the process-global trace sequence (monotone across fabrics,
// which only ever makes interleaved traces easier to merge).
var traceSeq atomic.Uint64

// emit sends an event to the tracer, if any. The event is passed by
// pointer so the benign no-tracer path never copies it.
func (f *Fabric) emit(kind TraceKind, op *TriggerEvent, server types.ServerID) {
	if f.tracer == nil {
		return
	}
	f.tracer.Trace(TraceEvent{
		Seq:    traceSeq.Add(1),
		Kind:   kind,
		Op:     *op,
		Server: server,
	})
}
