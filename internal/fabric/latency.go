package fabric

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/seed"
	"repro/internal/types"
)

// LatencyProfile is the per-operation delay distribution of a LatencyLane.
// Delivery delay is Base plus a uniform draw from [0, Jitter), plus Spike
// with probability SpikeProb. Because each operation draws independently,
// jitter alone already reorders operations relative to their trigger order
// — a later op with a small draw overtakes an earlier op with a large one —
// and spikes produce the long-tail stragglers that force quorum gathers to
// complete without their slowest servers.
type LatencyProfile struct {
	// Base is the minimum delivery delay.
	Base time.Duration
	// Jitter is the width of the uniform extra delay.
	Jitter time.Duration
	// SpikeProb is the probability of adding Spike on top.
	SpikeProb float64
	// Spike is the straggler delay.
	Spike time.Duration
}

// LatencyLane is a delay-injecting backend: operations reach the (local)
// base object after a seeded pseudo-random delay, modelling an asynchronous
// lossless link. It composes with the Gate adversary — gate decisions
// happen at trigger and respond time as always; the lane only decides when
// a passed operation reaches the server — so chaos runs on a latency lane
// exercise held, released, *and* genuinely late operations at once.
type LatencyLane struct {
	profile LatencyProfile

	mu  sync.Mutex
	rng *rand.Rand
}

// Compile-time interface compliance checks.
var (
	_ Lane = (*LatencyLane)(nil)
	_ Lane = InProcLane{}
)

// NewLatencyLane creates a latency lane with its own seeded generator.
func NewLatencyLane(laneSeed int64, p LatencyProfile) *LatencyLane {
	return &LatencyLane{profile: p, rng: rand.New(rand.NewSource(laneSeed))}
}

// LatencyLanes returns a maker that equips every server with a latency lane
// whose generator is an independent sub-stream of the given seed, so the
// whole fabric's delay schedule replays from one number.
func LatencyLanes(laneSeed int64, p LatencyProfile) LaneMaker {
	return func(server types.ServerID) Lane {
		return NewLatencyLane(seed.Sub(laneSeed, uint64(server)), p)
	}
}

// delay draws the next delivery delay.
func (l *LatencyLane) delay() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.profile.Base
	if l.profile.Jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(l.profile.Jitter)))
	}
	if l.profile.SpikeProb > 0 && l.rng.Float64() < l.profile.SpikeProb {
		d += l.profile.Spike
	}
	return d
}

// Deliver implements Lane: the operation linearizes when the timer fires.
// A zero delay completes inline, which makes the zero profile behave
// exactly like the in-process lane.
func (l *LatencyLane) Deliver(_ TriggerEvent, apply ApplyFunc, complete CompleteFunc) {
	d := l.delay()
	if d <= 0 {
		complete(apply())
		return
	}
	time.AfterFunc(d, func() { complete(apply()) })
}

// Close implements Lane. Outstanding timers are left to fire: their applies
// go through the fabric's crash checks, and completions for drained ops are
// discarded by the in-flight claim.
func (l *LatencyLane) Close() error { return nil }
