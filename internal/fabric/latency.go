package fabric

import (
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baseobj"
	"repro/internal/seed"
	"repro/internal/types"
)

// LatencyProfile is the per-operation delay distribution of a LatencyLane.
// Delivery delay is Base plus a uniform draw from [0, Jitter), plus Spike
// with probability SpikeProb. Because each operation draws independently,
// jitter alone already reorders operations relative to their trigger order
// — a later op with a small draw overtakes an earlier op with a large one —
// and spikes produce the long-tail stragglers that force quorum gathers to
// complete without their slowest servers.
type LatencyProfile struct {
	// Base is the minimum delivery delay.
	Base time.Duration
	// Jitter is the width of the uniform extra delay.
	Jitter time.Duration
	// SpikeProb is the probability of adding Spike on top.
	SpikeProb float64
	// Spike is the straggler delay.
	Spike time.Duration
}

// DefaultMailboxCapacity is the bound of a lane event loop's op mailbox when
// no option overrides it. The REPRO_LANE_MAILBOX environment variable
// replaces the default process-wide (the race-lanes CI variant sets it to 1
// to force every delivery through the backpressure path).
const DefaultMailboxCapacity = 1024

var envMailboxOnce sync.Once
var envMailboxCap int

func defaultMailboxCapacity() int {
	envMailboxOnce.Do(func() {
		envMailboxCap = parseMailboxCapacity(os.Getenv("REPRO_LANE_MAILBOX"))
	})
	return envMailboxCap
}

// parseMailboxCapacity maps a REPRO_LANE_MAILBOX value onto a capacity:
// any non-positive or unparsable value falls back to the default.
func parseMailboxCapacity(s string) int {
	if n, err := strconv.Atoi(s); err == nil && n > 0 {
		return n
	}
	return DefaultMailboxCapacity
}

// LatencyOption configures a LatencyLane.
type LatencyOption func(*LatencyLane)

// WithMailboxCapacity bounds the lane's op mailbox. Capacity 1 forces every
// delivery through the backpressure path (each send blocks until the loop
// dequeues the previous group); larger capacities let whole scattered rounds
// queue without blocking their triggering goroutines.
func WithMailboxCapacity(n int) LatencyOption {
	return func(l *LatencyLane) {
		if n > 0 {
			l.mailboxCap = n
		}
	}
}

// WithCoalesceWindow widens the loop's fire slack: when the delay timer
// fires, operations due within the next w are delivered in the same pass,
// giving read coalescing more ops to merge at the cost of up to w of extra
// model-time precision. Zero (the default) fires exactly on schedule.
func WithCoalesceWindow(w time.Duration) LatencyOption {
	return func(l *LatencyLane) {
		if w >= 0 {
			l.window = w
		}
	}
}

// laneGroup is one mailbox message: either a single operation (op) or a
// whole scattered group (ops), flagged scan when the group must be applied
// as one consistent snapshot.
type laneGroup struct {
	op   LaneOp   // single op, used when ops is nil
	ops  []LaneOp // group delivery
	scan bool
}

// heapNode is one delay-heap entry. The payload (a LaneOp or a scan group)
// lives out-of-line in the heap's slab, so sift swaps move 24 bytes instead
// of a full op record.
type heapNode struct {
	due int64 // deadline in ns since loop start epoch
	seq uint64
	idx int32 // payload slot in pendingHeap.pay
}

// heapPayload is the out-of-line op record of one heap node: a single
// operation, or an entire scan group that travels (and fires) as a unit.
type heapPayload struct {
	op   LaneOp
	scan []LaneOp // non-nil: snapshot group, applied back-to-back
}

// completion is one finished apply waiting for the completer goroutine.
type completion struct {
	complete CompleteFunc
	resp     baseobj.Response
	err      error
}

// LatencyLane is a delay-injecting backend: operations reach the (local)
// base object after a seeded pseudo-random delay, modelling an asynchronous
// lossless link. It composes with the Gate adversary — gate decisions
// happen at trigger and respond time as always; the lane only decides when
// a passed operation reaches the server — so chaos runs on a latency lane
// exercise held, released, *and* genuinely late operations at once.
//
// The lane is a single-goroutine event loop: deliveries enqueue into a
// bounded mailbox, the loop draws each operation's delay, holds it in a
// timer heap, and applies it against the base object when the delay
// expires. Because the loop is the only goroutine that ever applies, it
// exploits the serialization two ways: identical reads that fire in the
// same pass are answered from one apply (collect coalescing — see
// CoalescedReads), and a DeliverScan group is applied back-to-back with
// nothing interleaved, yielding a consistent snapshot without per-object
// locking. Completions are handed to a separate completer goroutine through
// an unbounded queue, so a completion that triggers a new operation on the
// same lane (a casmax chain, a round engine re-scatter) can never deadlock
// against a full mailbox.
type LatencyLane struct {
	profile    LatencyProfile
	mailboxCap int
	window     time.Duration

	mu  sync.Mutex
	rng *rand.Rand

	startOnce sync.Once
	stopOnce  sync.Once
	mb        chan laneGroup
	stop      chan struct{}

	// Completion queue: mutex-guarded slice drained by the completer
	// goroutine, signalled by a 1-buffered channel.
	cmu  sync.Mutex
	cq   []completion
	csig chan struct{}

	// scratch is fire's reusable completion-staging buffer (loop-only).
	scratch []completion

	coalesced atomic.Uint64

	// testHook, when set before the first delivery, runs on the loop
	// goroutine after each mailbox dequeue and before the group's delay
	// draw / snapshot apply. Tests use it to crash the server in the
	// dequeue-to-snapshot window.
	testHook func()
}

// Compile-time interface compliance checks.
var (
	_ Lane      = (*LatencyLane)(nil)
	_ GroupLane = (*LatencyLane)(nil)
	_ ScanLane  = (*LatencyLane)(nil)
	_ Lane      = InProcLane{}
)

// NewLatencyLane creates a latency lane with its own seeded generator. The
// event loop starts lazily on the first delivery.
func NewLatencyLane(laneSeed int64, p LatencyProfile, opts ...LatencyOption) *LatencyLane {
	l := &LatencyLane{
		profile:    p,
		rng:        rand.New(rand.NewSource(laneSeed)),
		mailboxCap: defaultMailboxCapacity(),
		stop:       make(chan struct{}),
		csig:       make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// LatencyLanes returns a maker that equips every server with a latency lane
// whose generator is an independent sub-stream of the given seed, so the
// whole fabric's delay schedule replays from one number.
func LatencyLanes(laneSeed int64, p LatencyProfile, opts ...LatencyOption) LaneMaker {
	return func(server types.ServerID) Lane {
		return NewLatencyLane(seed.Sub(laneSeed, uint64(server)), p, opts...)
	}
}

// delay draws the next delivery delay.
func (l *LatencyLane) delay() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.profile.Base
	if l.profile.Jitter > 0 {
		d += time.Duration(l.rng.Int63n(int64(l.profile.Jitter)))
	}
	if l.profile.SpikeProb > 0 && l.rng.Float64() < l.profile.SpikeProb {
		d += l.profile.Spike
	}
	return d
}

// CoalescedReads reports how many read operations were answered from
// another read's apply instead of their own (collect coalescing).
func (l *LatencyLane) CoalescedReads() uint64 { return l.coalesced.Load() }

func (l *LatencyLane) start() {
	l.startOnce.Do(func() {
		l.mb = make(chan laneGroup, l.mailboxCap)
		go l.loop()
		go l.completer()
	})
}

// enqueue blocks until the loop accepts the group (backpressure) or the
// lane closes, in which case the ops silently stay pending forever —
// indistinguishable from ops dropped by a crash.
func (l *LatencyLane) enqueue(g laneGroup) {
	l.start()
	select {
	case l.mb <- g:
	case <-l.stop:
	}
}

// Deliver implements Lane: the operation linearizes inside the event loop
// when its delay expires.
func (l *LatencyLane) Deliver(ev TriggerEvent, apply ApplyFunc, complete CompleteFunc) {
	l.enqueue(laneGroup{op: LaneOp{Ev: ev, Apply: apply, Complete: complete}})
}

// DeliverGroup implements GroupLane: the whole scattered group enters the
// mailbox as one message; each member still draws its own delay, so the
// group's responses straggle exactly as independent Delivers would.
func (l *LatencyLane) DeliverGroup(ops []LaneOp) {
	if len(ops) == 0 {
		return
	}
	l.enqueue(laneGroup{ops: ops})
}

// DeliverScan implements ScanLane: the group draws one shared delay and is
// applied back-to-back inside the loop — a consistent snapshot of the
// server's objects at a single model time.
func (l *LatencyLane) DeliverScan(ops []LaneOp) {
	if len(ops) == 0 {
		return
	}
	l.enqueue(laneGroup{ops: ops, scan: true})
}

// Close implements Lane: stops the loop and completer. Outstanding and
// still-enqueued operations never complete — the paper's pending-forever
// state, the same observable outcome as a crash drop.
func (l *LatencyLane) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	return nil
}

// pendingHeap is a min-heap on (due, seq), hand-rolled to avoid both the
// interface boxing of container/heap and fat-element sift swaps: nodes are
// 24 bytes, payloads live in a free-listed slab indexed by node.
type pendingHeap struct {
	nodes []heapNode
	pay   []heapPayload
	free  []int32
}

func (h *pendingHeap) len() int { return len(h.nodes) }

func (h *pendingHeap) less(i, j int) bool {
	a, b := &h.nodes[i], &h.nodes[j]
	if a.due != b.due {
		return a.due < b.due
	}
	return a.seq < b.seq
}

func (h *pendingHeap) push(due int64, seq uint64, p heapPayload) {
	var idx int32
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
		h.pay[idx] = p
	} else {
		idx = int32(len(h.pay))
		h.pay = append(h.pay, p)
	}
	h.nodes = append(h.nodes, heapNode{due: due, seq: seq, idx: idx})
	i := len(h.nodes) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.nodes[i], h.nodes[parent] = h.nodes[parent], h.nodes[i]
		i = parent
	}
}

// pop removes the earliest node and returns its payload slot. The caller
// must release the slot with put after consuming the payload.
func (h *pendingHeap) pop() int32 {
	top := h.nodes[0].idx
	n := len(h.nodes) - 1
	h.nodes[0] = h.nodes[n]
	h.nodes = h.nodes[:n]
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		small := left
		if right := left + 1; right < n && h.less(right, left) {
			small = right
		}
		if !h.less(small, i) {
			break
		}
		h.nodes[i], h.nodes[small] = h.nodes[small], h.nodes[i]
		i = small
	}
	return top
}

// put releases a payload slot back to the free list.
func (h *pendingHeap) put(idx int32) {
	h.pay[idx] = heapPayload{} // release op closures for GC
	h.free = append(h.free, idx)
}

// loop is the lane's event loop: the only goroutine that applies operations
// against this server's base objects.
func (l *LatencyLane) loop() {
	epoch := time.Now()
	now := func() int64 { return int64(time.Since(epoch)) }

	var h pendingHeap
	var seq uint64

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	timerArmed := false

	admit := func(g laneGroup) {
		if l.testHook != nil {
			l.testHook()
		}
		t := now()
		if g.scan {
			// One draw for the whole snapshot: the group arrives (and
			// linearizes) together at a single model time.
			h.push(t+int64(l.delay()), seq, heapPayload{scan: g.ops})
			seq++
			return
		}
		ops := g.ops
		if ops == nil {
			h.push(t+int64(l.delay()), seq, heapPayload{op: g.op})
			seq++
			return
		}
		for _, op := range ops {
			h.push(t+int64(l.delay()), seq, heapPayload{op: op})
			seq++
		}
	}

	for {
		// Arm the timer for the earliest pending op.
		var timerC <-chan time.Time
		if h.len() > 0 {
			if timerArmed && !timer.Stop() {
				<-timer.C
			}
			timer.Reset(time.Duration(h.nodes[0].due - now()))
			timerArmed = true
			timerC = timer.C
		} else if timerArmed {
			if !timer.Stop() {
				<-timer.C
			}
			timerArmed = false
		}

		select {
		case <-l.stop:
			return
		case g := <-l.mb:
			admit(g)
			// Drain whatever else is already queued before re-arming: a
			// scattered round delivered as several sends coalesces into
			// one heap refill.
			for drained := false; !drained; {
				select {
				case g := <-l.mb:
					admit(g)
				default:
					drained = true
				}
			}
		case <-timerC:
			timerArmed = false
			l.fire(&h, now())
		}
	}
}

// cachedRead is one entry of fire's read-coalescing cache.
type cachedRead struct {
	op   baseobj.OpCode
	resp baseobj.Response
	err  error
}

// fire pops and applies every entry due by t (plus the coalescing window),
// in due order. Identical reads on the same object with no intervening
// write are answered from a single apply (collect coalescing).
func (l *LatencyLane) fire(h *pendingHeap, t int64) {
	horizon := t + int64(l.window)
	if h.len() == 0 || h.nodes[0].due > horizon {
		return
	}

	// Read-coalescing cache: object → outcome of the last apply on that
	// object in this pass, kept only while it stays a read.
	var cache map[types.ObjectID]cachedRead

	out := l.scratch[:0]
	for h.len() > 0 && h.nodes[0].due <= horizon {
		idx := h.pop()
		p := &h.pay[idx]
		if p.scan != nil {
			// Snapshot group: applied back-to-back; the loop is the only
			// applier, so nothing interleaves. Scans bypass the read cache
			// — each member must observe the snapshot, not a response
			// recorded before it.
			for _, op := range p.scan {
				resp, err := op.Apply()
				out = append(out, completion{complete: op.Complete, resp: resp, err: err})
			}
			h.put(idx)
			continue
		}
		op := &p.op
		code := op.Ev.Inv.Op
		switch {
		case !code.IsRead():
			delete(cache, op.Ev.Object)
			resp, err := op.Apply()
			out = append(out, completion{complete: op.Complete, resp: resp, err: err})
		default:
			if c, ok := cache[op.Ev.Object]; ok && c.op == code {
				l.coalesced.Add(1)
				out = append(out, completion{complete: op.Complete, resp: c.resp, err: c.err})
				break
			}
			resp, err := op.Apply()
			if cache == nil {
				cache = make(map[types.ObjectID]cachedRead, 8)
			}
			cache[op.Ev.Object] = cachedRead{op: code, resp: resp, err: err}
			out = append(out, completion{complete: op.Complete, resp: resp, err: err})
		}
		h.put(idx)
	}
	l.scratch = out[:0:cap(out)]

	l.cmu.Lock()
	l.cq = append(l.cq, out...)
	l.cmu.Unlock()
	select {
	case l.csig <- struct{}{}:
	default:
	}
}

// completer drains the completion queue. Running completions off the loop
// goroutine keeps the loop free to dequeue: a completion that triggers a
// new op on this very lane blocks (at worst) on the mailbox, which the loop
// is always able to drain.
func (l *LatencyLane) completer() {
	for {
		l.cmu.Lock()
		q := l.cq
		l.cq = nil
		l.cmu.Unlock()
		if len(q) == 0 {
			select {
			case <-l.csig:
				continue
			case <-l.stop:
				return
			}
		}
		for _, c := range q {
			c.complete(c.resp, c.err)
		}
	}
}
