package fabric

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// waitOutcome blocks until a call completes (the latency lane and frozen
// lanes complete asynchronously).
func waitOutcome(t *testing.T, call *Call) Outcome {
	t.Helper()
	ch := make(chan Outcome, 1)
	call.OnComplete(func(o Outcome) { ch <- o })
	select {
	case o := <-ch:
		return o
	case <-time.After(10 * time.Second):
		t.Fatalf("call %d never completed", call.Token())
		return Outcome{}
	}
}

// TestReplaceTransfersState pins the full freeze → drain → transfer →
// activate sequence on the in-process lane: the written value survives the
// move, routes re-resolve to the joiner, the view drops the departed
// server, and a departure is not a crash.
func TestReplaceTransfersState(t *testing.T) {
	fab, objs := testEnv(t, nil)
	c := fab.Cluster()
	if o := mustOutcome(t, fab.Trigger(0, objs[0], writeInv(5, 42))); o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}
	epochBefore := c.Epoch()

	newID, err := fab.Replace(context.Background(), 0, nil)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if newID != 3 {
		t.Fatalf("joiner ID = %d, want 3 (IDs are never reused)", newID)
	}
	view := c.View()
	if view.N() != 3 {
		t.Fatalf("view N = %d, want 3", view.N())
	}
	for _, m := range view.Members {
		if m == 0 {
			t.Fatal("departed server 0 still in the view")
		}
	}
	if c.Epoch() <= epochBefore {
		t.Fatalf("epoch did not advance across Replace (%d -> %d)", epochBefore, c.Epoch())
	}
	if s, err := c.Delta(objs[0]); err != nil || s != newID {
		t.Fatalf("Delta(%d) = %d, %v; want %d", objs[0], s, err, newID)
	}
	if o := mustOutcome(t, fab.Trigger(1, objs[0], readInv())); o.Err != nil || o.Resp.Val.Val != 42 {
		t.Fatalf("read after transfer = %+v, want val 42", o)
	}
	// Writes keep flowing to the migrated object through the old object ID.
	if o := mustOutcome(t, fab.Trigger(0, objs[0], writeInv(6, 43))); o.Err != nil {
		t.Fatalf("write after transfer: %v", o.Err)
	}
	if o := mustOutcome(t, fab.Trigger(1, objs[0], readInv())); o.Err != nil || o.Resp.Val.Val != 43 {
		t.Fatalf("read after post-transfer write = %+v, want val 43", o)
	}
	if c.Crashes() != 0 {
		t.Fatalf("Crashes = %d after a clean leave, want 0", c.Crashes())
	}
	old, err := c.Server(0)
	if err != nil {
		t.Fatalf("Server(0): %v", err)
	}
	if !old.Departing() || old.NumObjects() != 0 {
		t.Fatalf("departed server: departing=%v objects=%d, want true/0", old.Departing(), old.NumObjects())
	}
}

// TestReplaceDrainsParkedOps pins the phase divergence of the coordinator
// drain: a gate-parked PhaseApply op never applied, so it must complete
// with a retryable view-change error; a PhaseRespond op already linearized,
// so it must complete with its real response.
func TestReplaceDrainsParkedOps(t *testing.T) {
	gate := GateFuncs{
		Apply: func(ev TriggerEvent) Decision {
			if ev.Inv.Op == baseobj.OpWrite && ev.Inv.Arg.Val == 10 {
				return Hold
			}
			return Pass
		},
		Respond: func(ev TriggerEvent, _ baseobj.Response) Decision {
			if ev.Inv.Op == baseobj.OpWrite && ev.Inv.Arg.Val == 11 {
				return Hold
			}
			return Pass
		},
	}
	fab, objs := testEnv(t, gate)
	applyHeld := fab.Trigger(0, objs[0], writeInv(1, 10))
	respondHeld := fab.Trigger(1, objs[0], writeInv(2, 11))
	if _, done := applyHeld.Outcome(); done {
		t.Fatal("apply-held op completed before the drain")
	}

	newID, err := fab.Replace(context.Background(), 0, nil)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}

	o := waitOutcome(t, applyHeld)
	if !IsViewChange(o.Err) {
		t.Fatalf("apply-held op completed with %v, want a view-change error", o.Err)
	}
	o = waitOutcome(t, respondHeld)
	if o.Err != nil {
		t.Fatalf("respond-held op completed with %v, want its real response", o.Err)
	}
	// The respond-held write linearized before the freeze, so its effect is
	// part of the transferred state on the joiner.
	if r := mustOutcome(t, fab.Trigger(2, objs[0], readInv())); r.Err != nil || r.Resp.Val.Val != 11 {
		t.Fatalf("read after drain = %+v, want val 11 (respond-held write transferred)", r)
	}
	if s, _ := fab.Cluster().Delta(objs[0]); s != newID {
		t.Fatalf("object on server %d, want joiner %d", s, newID)
	}
}

// TestReplaceRefusals: a crashed server's state is lost (no replacement),
// and a server cannot depart twice.
func TestReplaceRefusals(t *testing.T) {
	fab, _ := testEnv(t, nil)
	ctx := context.Background()
	if err := fab.Crash(1); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Replace(ctx, 1, nil); err == nil {
		t.Fatal("Replace of a crashed server succeeded")
	}
	srv, err := fab.Cluster().Server(2)
	if err != nil {
		t.Fatal(err)
	}
	srv.Depart()
	if _, err := fab.Replace(ctx, 2, nil); err == nil {
		t.Fatal("Replace of an already-departing server succeeded")
	}
	if _, err := fab.Replace(ctx, 99, nil); err == nil {
		t.Fatal("Replace of an unknown server succeeded")
	}
}

// TestTriggerOnDepartingServerRetries: an op routed to a departing server
// completes with a retryable view-change error before touching the wire —
// the freeze window every transparent retry loop is built around.
func TestTriggerOnDepartingServerRetries(t *testing.T) {
	fab, objs := testEnv(t, nil)
	srv, err := fab.Cluster().Server(0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Depart()
	o := waitOutcome(t, fab.Trigger(0, objs[0], writeInv(1, 7)))
	if !IsViewChange(o.Err) {
		t.Fatalf("trigger on departing server = %v, want a view-change error", o.Err)
	}
	// The guarantee behind exactly-once retries: the op never applied.
	obj, err := fab.Cluster().Object(objs[0])
	if err != nil {
		t.Fatal(err)
	}
	if v := obj.Peek(); v.Val != types.InitialValue {
		t.Fatalf("rejected write applied anyway: %+v", v)
	}
}

// TestReplaceUnderLatencyLaneLoad replaces every original server of a
// latency-lane fabric while seeded concurrent clients keep writing and
// reading through RetryView. Zero operations may fail: ops caught in freeze
// windows must retry transparently into the new view.
func TestReplaceUnderLatencyLaneLoad(t *testing.T) {
	c, err := cluster.New(3)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, 3)
	for s := 0; s < 3; s++ {
		if objs[s], err = c.PlaceMaxRegister(types.ServerID(s)); err != nil {
			t.Fatal(err)
		}
	}
	profile := LatencyProfile{Jitter: 50 * time.Microsecond}
	fab := New(c, WithLanes(LatencyLanes(7, profile)))
	defer fab.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ts := uint64(1); ; ts++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := objs[int(ts)%len(objs)]
				inv := baseobj.Invocation{Op: baseobj.OpWriteMax, Arg: types.TSValue{TS: ts, Writer: types.ClientID(w), Val: types.Value(ts)}}
				if _, err := RetryView(ctx, func() (types.TSValue, error) {
					o := waitOutcome(t, fab.Trigger(types.ClientID(w), obj, inv))
					return o.Resp.Val, o.Err
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	for _, old := range c.View().Members {
		if _, err := fab.Replace(ctx, old, nil); err != nil {
			t.Fatalf("Replace(%d): %v", old, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("client op failed during reconfiguration: %v", err)
	default:
	}
	view := c.View()
	if view.N() != 3 {
		t.Fatalf("view N = %d, want 3", view.N())
	}
	for _, m := range view.Members {
		if m < 3 {
			t.Fatalf("original server %d still in the view %v", m, view.Members)
		}
	}
}

// TestViewRetryDelay pins the backoff shape: immediate for the first two
// attempts (the common one-epoch race), exponential after, capped.
func TestViewRetryDelay(t *testing.T) {
	if d := ViewRetryDelay(0); d != 0 {
		t.Errorf("delay(0) = %v, want 0", d)
	}
	if d := ViewRetryDelay(1); d != 0 {
		t.Errorf("delay(1) = %v, want 0", d)
	}
	if d := ViewRetryDelay(2); d <= 0 {
		t.Errorf("delay(2) = %v, want > 0", d)
	}
	prev := time.Duration(0)
	for a := 2; a < 40; a++ {
		d := ViewRetryDelay(a)
		if d < prev {
			t.Fatalf("delay(%d) = %v < delay(%d) = %v — not monotone", a, d, a-1, prev)
		}
		if d > 2*time.Millisecond {
			t.Fatalf("delay(%d) = %v exceeds the cap", a, d)
		}
		prev = d
	}
}
