package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/types"
)

// scanEnv builds a cluster whose single server hosts k registers — the
// shape a snapshot scan must read as one consistent cut.
func scanEnv(t *testing.T, k int, maker LaneMaker) (*Fabric, []types.ObjectID) {
	t.Helper()
	c, err := cluster.New(1)
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]types.ObjectID, k)
	for i := range objs {
		obj, err := c.PlaceRegister(0)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = obj
	}
	var opts []Option
	if maker != nil {
		opts = append(opts, WithLanes(maker))
	}
	fab := New(c, opts...)
	t.Cleanup(func() { fab.Close() })
	return fab, objs
}

// awaitScan triggers one snapshot scan over objs and returns the observed
// timestamps in placement order.
func awaitScan(t *testing.T, fab *Fabric, client types.ClientID, objs []types.ObjectID) []uint64 {
	t.Helper()
	ts := make([]uint64, len(objs))
	var wg sync.WaitGroup
	wg.Add(len(objs))
	ops := make([]BatchOp, len(objs))
	for i, obj := range objs {
		i := i
		ops[i] = BatchOp{Object: obj, Inv: readInv(), Done: func(o Outcome) {
			if o.Err != nil {
				t.Errorf("scan read: %v", o.Err)
			}
			ts[i] = o.Resp.Val.TS
			wg.Done()
		}}
	}
	fab.TriggerScan(client, ops)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scan never completed")
	}
	return ts
}

// TestScanSnapshotNoTornReads is the torn-scan regression: a writer walks
// the server's registers in placement order, bumping each to round r before
// moving on, so at every instant the timestamps are non-increasing along
// the placement order. Concurrent snapshot scans — including many queued
// scans coalesced into one lane pass — must observe a consistent cut, never
// the torn shape (a later register ahead of an earlier one). Run under
// -race: the scans race the writer by design.
func TestScanSnapshotNoTornReads(t *testing.T) {
	backends := []struct {
		name  string
		maker LaneMaker
	}{
		{"inproc", nil},
		{"latency", LatencyLanes(11, LatencyProfile{Jitter: 30 * time.Microsecond})},
	}
	for _, be := range backends {
		be := be
		t.Run("lane="+be.name, func(t *testing.T) {
			const k, rounds, scanners = 4, 40, 6
			fab, objs := scanEnv(t, k, be.maker)

			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for r := 1; r <= rounds; r++ {
					for _, obj := range objs {
						if o := awaitOutcome(t, fab.Trigger(0, obj, writeInv(uint64(r), types.Value(r)))); o.Err != nil {
							t.Errorf("write round %d: %v", r, o.Err)
							return
						}
					}
				}
			}()

			var wg sync.WaitGroup
			for s := 0; s < scanners; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					client := types.ClientID(s + 1)
					for {
						select {
						case <-writerDone:
							return
						default:
						}
						ts := awaitScan(t, fab, client, objs)
						for i := 1; i < len(ts); i++ {
							if ts[i] > ts[i-1] {
								t.Errorf("torn scan: %v (register %d ahead of %d)", ts, i, i-1)
								return
							}
						}
					}
				}(s)
			}
			wg.Wait()
		})
	}
}

// TestLatencyLaneCrashBetweenDequeueAndSnapshot crashes the server inside
// the event loop's window between dequeuing a scan group from the mailbox
// and drawing its delivery delay: the scan's ops must be dropped — never
// completed, never applied — exactly like any in-flight op on a crashed
// server.
func TestLatencyLaneCrashBetweenDequeueAndSnapshot(t *testing.T) {
	lane := NewLatencyLane(5, LatencyProfile{Base: 2 * time.Millisecond})
	fab, objs := scanEnv(t, 3, func(types.ServerID) Lane { return lane })

	var once sync.Once
	lane.testHook = func() {
		once.Do(func() {
			if err := fab.Crash(0); err != nil {
				t.Errorf("crash: %v", err)
			}
		})
	}

	ops := make([]BatchOp, len(objs))
	for i, obj := range objs {
		ops[i] = BatchOp{Object: obj, Inv: readInv()}
	}
	calls := fab.TriggerScan(1, ops)

	// Wait well past the delivery delay: nothing may complete.
	time.Sleep(20 * time.Millisecond)
	if got := fab.Cluster().Crashes(); got != 1 {
		t.Fatalf("crashes = %d, want 1", got)
	}
	for i, call := range calls {
		if o, ok := call.Outcome(); ok {
			t.Fatalf("scan op %d completed %+v after crash in the dequeue window", i, o)
		}
	}
	var dropped int
	for _, p := range fab.Pending() {
		if p.Phase == PhaseDropped {
			dropped++
		}
	}
	if dropped != len(objs) {
		t.Fatalf("dropped = %d, want %d", dropped, len(objs))
	}
}

// TestLatencyLaneMailboxCapacityOne forces every enqueue to block on the
// loop's dequeue (mailbox capacity 1) and hammers the lane with concurrent
// clients mixing writes, reads, and snapshot scans: backpressure must slow
// delivery, never deadlock or drop it.
func TestLatencyLaneMailboxCapacityOne(t *testing.T) {
	fast := LatencyProfile{Jitter: 20 * time.Microsecond}
	fab, objs := scanEnv(t, 3, LatencyLanes(7, fast, WithMailboxCapacity(1)))
	var wg sync.WaitGroup
	for cl := 0; cl < 6; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			client := types.ClientID(cl)
			for i := 0; i < 40; i++ {
				switch i % 3 {
				case 0:
					if o := awaitOutcome(t, fab.Trigger(client, objs[cl%len(objs)], writeInv(uint64(cl*100+i+1), types.Value(i)))); o.Err != nil {
						t.Errorf("write: %v", o.Err)
						return
					}
				case 1:
					if o := awaitOutcome(t, fab.Trigger(client, objs[(cl+i)%len(objs)], readInv())); o.Err != nil {
						t.Errorf("read: %v", o.Err)
						return
					}
				default:
					awaitScan(t, fab, client, objs)
				}
			}
		}(cl)
	}
	wg.Wait()
}

// TestLatencyLaneCoalescesReads: reads of the same object that fall due in
// one fire pass are answered from a single apply. The coalesced counter is
// the observable; the responses must still be correct.
func TestLatencyLaneCoalescesReads(t *testing.T) {
	lane := NewLatencyLane(3, LatencyProfile{Base: 2 * time.Millisecond},
		WithCoalesceWindow(2*time.Millisecond))
	fab, objs := scanEnv(t, 1, func(types.ServerID) Lane { return lane })

	if o := awaitOutcome(t, fab.Trigger(0, objs[0], writeInv(1, 42))); o.Err != nil {
		t.Fatalf("write: %v", o.Err)
	}

	const readers = 16
	var wg sync.WaitGroup
	var bad atomic.Int64
	wg.Add(readers)
	for i := 0; i < readers; i++ {
		fab.TriggerFn(types.ClientID(i+1), objs[0], readInv(), func(o Outcome) {
			if o.Err != nil || o.Resp.Val.Val != 42 {
				bad.Add(1)
			}
			wg.Done()
		})
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d coalesced reads returned the wrong value", n)
	}
	if lane.CoalescedReads() == 0 {
		t.Fatal("no reads coalesced: 16 same-object reads due in one pass should share an apply")
	}
	t.Logf("coalesced %d of %d reads", lane.CoalescedReads(), readers)
}

// TestLatencyLaneMailboxEnvOverride pins the REPRO_LANE_MAILBOX parsing
// used by the race-lanes CI variant.
func TestLatencyLaneMailboxEnvOverride(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"1", 1}, {"64", 64}, {"0", DefaultMailboxCapacity}, {"", DefaultMailboxCapacity}, {"junk", DefaultMailboxCapacity}} {
		if got := parseMailboxCapacity(tc.in); got != tc.want {
			t.Errorf("parseMailboxCapacity(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
