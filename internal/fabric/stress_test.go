package fabric

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/baseobj"
	"repro/internal/cluster"
	"repro/internal/types"
)

// TestConcurrentHoldReleaseCrashStress hammers the fabric's most
// race-prone paths concurrently: triggers racing with releases racing with
// a crash. Run with -race. Invariants checked afterwards:
//
//   - every call either completed or is accounted for in Pending
//   - no token is both pending and completed
//   - covered objects all have a genuinely pending write
func TestConcurrentHoldReleaseCrashStress(t *testing.T) {
	const (
		servers    = 4
		objsPer    = 3
		goroutines = 6
		opsEach    = 150
	)
	c, err := cluster.New(servers)
	if err != nil {
		t.Fatal(err)
	}
	var objs []types.ObjectID
	for s := 0; s < servers; s++ {
		for i := 0; i < objsPer; i++ {
			obj, err := c.PlaceRegister(types.ServerID(s))
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj)
		}
	}
	// Hold roughly a third of all writes, deterministically by token.
	gate := GateFuncs{Apply: func(ev TriggerEvent) Decision {
		if ev.Inv.Op.IsWrite() && ev.Token%3 == 0 {
			return Hold
		}
		return Pass
	}}
	fab := New(c, WithGate(gate))

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		calls []*Call
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsEach; i++ {
				obj := objs[rng.Intn(len(objs))]
				var call *Call
				if rng.Intn(2) == 0 {
					call = fab.Trigger(types.ClientID(g), obj, baseobj.Invocation{
						Op:  baseobj.OpWrite,
						Arg: types.TSValue{TS: uint64(i + 1), Writer: types.ClientID(g)},
					})
				} else {
					call = fab.Trigger(types.ClientID(g), obj, baseobj.Invocation{Op: baseobj.OpRead})
				}
				mu.Lock()
				calls = append(calls, call)
				mu.Unlock()
				if rng.Intn(5) == 0 {
					fab.ReleaseWhere(func(op PendingOp) bool {
						return op.Event.Client == types.ClientID(g)
					})
				}
			}
		}(g)
	}
	// One goroutine crashes a server midway.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := fab.Crash(types.ServerID(servers - 1)); err != nil {
			t.Errorf("Crash: %v", err)
		}
	}()
	wg.Wait()

	// Drain: release everything still held.
	fab.ReleaseWhere(func(PendingOp) bool { return true })

	pendingTokens := make(map[uint64]Phase)
	for _, op := range fab.Pending() {
		pendingTokens[op.Event.Token] = op.Phase
	}
	completed := 0
	for _, call := range calls {
		_, done := call.Outcome()
		phase, pending := pendingTokens[call.Token()]
		switch {
		case done && pending:
			t.Fatalf("token %d both completed and pending (%v)", call.Token(), phase)
		case done:
			completed++
		case !pending:
			t.Fatalf("token %d neither completed nor pending", call.Token())
		case phase != PhaseDropped:
			t.Fatalf("token %d still held (%v) after global release", call.Token(), phase)
		}
	}
	if completed == 0 {
		t.Fatal("no call completed")
	}
	// Every covered object must map to a pending write.
	for _, obj := range fab.CoveredObjects() {
		found := false
		for _, op := range fab.Pending() {
			if op.Event.Object == obj && op.Event.Inv.Op.IsWrite() {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("object %d covered without a pending write", obj)
		}
	}
}
