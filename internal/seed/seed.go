// Package seed derives independent pseudo-random sub-streams from a single
// experiment seed.
//
// Seeding two generators with `seed` and `seed+1` looks independent but is
// not across a *sweep* of adjacent seeds: the run at seed s and the run at
// seed s+1 then share an entire stream (s's schedule generator is s+1's
// gate generator), so neighbouring sweep jobs explore correlated behaviour
// while appearing to be distinct trials. Deriving every sub-stream through
// a splitmix64 finalizer breaks that coupling: the mapping
// (seed, stream) -> sub-seed is a high-quality hash, so adjacent seeds and
// adjacent streams land in unrelated states.
package seed

// Sub returns the seed of sub-stream `stream` of the experiment seed. The
// same (seed, stream) pair always yields the same sub-seed, so runs remain
// reproducible; distinct pairs yield uncorrelated sub-seeds.
//
// The mixer is the splitmix64 finalizer (Steele, Lea, Flood 2014), the
// construction java.util.SplittableRandom and xoshiro seeding use for
// exactly this purpose.
func Sub(seed int64, stream uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(stream+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
