package seed

import "testing"

// TestSubIsDeterministic pins reproducibility: experiments key their RNGs
// off (seed, stream) and must replay identically.
func TestSubIsDeterministic(t *testing.T) {
	for s := int64(-3); s < 3; s++ {
		for stream := uint64(0); stream < 4; stream++ {
			if Sub(s, stream) != Sub(s, stream) {
				t.Fatalf("Sub(%d, %d) not deterministic", s, stream)
			}
		}
	}
}

// TestSubBreaksAdjacentSeedCoupling checks the property the derivation
// exists for: the old `seed+1` scheme made run s's schedule stream equal
// run s+1's gate stream; under Sub no stream of seed s equals any stream
// of seed s+1 (over a generous window).
func TestSubBreaksAdjacentSeedCoupling(t *testing.T) {
	const streams = 8
	for s := int64(0); s < 100; s++ {
		mine := make(map[int64]uint64, streams)
		for st := uint64(0); st < streams; st++ {
			mine[Sub(s, st)] = st
		}
		for st := uint64(0); st < streams; st++ {
			if other, clash := mine[Sub(s+1, st)]; clash {
				t.Fatalf("Sub(%d,%d) == Sub(%d,%d): adjacent seeds share a stream", s+1, st, s, other)
			}
		}
	}
}

// TestSubStreamsDiffer: distinct streams of one seed must not collide.
func TestSubStreamsDiffer(t *testing.T) {
	seen := make(map[int64]uint64)
	for st := uint64(0); st < 64; st++ {
		v := Sub(42, st)
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d of seed 42 collide", prev, st)
		}
		seen[v] = st
	}
}
