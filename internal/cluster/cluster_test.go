package cluster

import (
	"errors"
	"testing"

	"repro/internal/baseobj"
	"repro/internal/types"
)

func mustCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := New(n)
	if err != nil {
		t.Fatalf("New(%d): %v", n, err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
	c := mustCluster(t, 3)
	if c.N() != 3 {
		t.Fatalf("N = %d, want 3", c.N())
	}
}

func TestPlacementAndDelta(t *testing.T) {
	c := mustCluster(t, 3)
	r, err := c.PlaceRegister(0)
	if err != nil {
		t.Fatalf("PlaceRegister: %v", err)
	}
	m, err := c.PlaceMaxRegister(1)
	if err != nil {
		t.Fatalf("PlaceMaxRegister: %v", err)
	}
	x, err := c.PlaceCASCell(1)
	if err != nil {
		t.Fatalf("PlaceCASCell: %v", err)
	}
	for obj, want := range map[types.ObjectID]types.ServerID{r: 0, m: 1, x: 1} {
		got, err := c.Delta(obj)
		if err != nil {
			t.Fatalf("Delta(%d): %v", obj, err)
		}
		if got != want {
			t.Errorf("Delta(%d) = %d, want %d", obj, got, want)
		}
	}
	if got := c.ResourceComplexity(); got != 3 {
		t.Errorf("ResourceComplexity = %d, want 3", got)
	}
	wantCounts := []int{1, 2, 0}
	for i, got := range c.PerServerCounts() {
		if got != wantCounts[i] {
			t.Errorf("PerServerCounts[%d] = %d, want %d", i, got, wantCounts[i])
		}
	}
	if got := c.ObjectsOn(1); len(got) != 2 || got[0] > got[1] {
		t.Errorf("ObjectsOn(1) = %v, want 2 ascending ids", got)
	}
	if got := c.AllObjects(); len(got) != 3 {
		t.Errorf("AllObjects = %v, want 3 ids", got)
	}
}

func TestPlacementErrors(t *testing.T) {
	c := mustCluster(t, 2)
	if _, err := c.PlaceRegister(5); !errors.Is(err, ErrNoSuchServer) {
		t.Errorf("place on missing server err = %v, want ErrNoSuchServer", err)
	}
	if _, err := c.Delta(42); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Delta on missing object err = %v, want ErrNoSuchObject", err)
	}
	if _, err := c.Object(42); !errors.Is(err, ErrNoSuchObject) {
		t.Errorf("Object on missing object err = %v, want ErrNoSuchObject", err)
	}
	if _, err := c.Server(-1); !errors.Is(err, ErrNoSuchServer) {
		t.Errorf("Server(-1) err = %v, want ErrNoSuchServer", err)
	}
}

func TestApplyRoutes(t *testing.T) {
	c := mustCluster(t, 2)
	obj, err := c.PlaceRegister(1)
	if err != nil {
		t.Fatal(err)
	}
	v := types.TSValue{TS: 1, Val: 5}
	if _, err := c.Apply(obj, 0, baseobj.Invocation{Op: baseobj.OpWrite, Arg: v}); err != nil {
		t.Fatalf("Apply write: %v", err)
	}
	resp, err := c.Apply(obj, 0, baseobj.Invocation{Op: baseobj.OpRead})
	if err != nil {
		t.Fatalf("Apply read: %v", err)
	}
	if resp.Val != v {
		t.Fatalf("read %v, want %v", resp.Val, v)
	}
}

func TestCrashSemantics(t *testing.T) {
	c := mustCluster(t, 3)
	onCrashed, err := c.PlaceRegister(0)
	if err != nil {
		t.Fatal(err)
	}
	onAlive, err := c.PlaceRegister(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if c.Crashes() != 1 {
		t.Fatalf("Crashes = %d, want 1", c.Crashes())
	}
	// Idempotent crash.
	if err := c.Crash(0); err != nil {
		t.Fatalf("second Crash: %v", err)
	}
	if c.Crashes() != 1 {
		t.Fatalf("Crashes after re-crash = %d, want 1", c.Crashes())
	}
	// All objects on the crashed server fail; others are unaffected.
	if _, err := c.Apply(onCrashed, 0, baseobj.Invocation{Op: baseobj.OpRead}); !errors.Is(err, ErrServerCrashed) {
		t.Errorf("apply on crashed server err = %v, want ErrServerCrashed", err)
	}
	if _, err := c.Apply(onAlive, 0, baseobj.Invocation{Op: baseobj.OpRead}); err != nil {
		t.Errorf("apply on live server: %v", err)
	}
	s, err := c.Server(0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Crashed() {
		t.Error("server 0 not marked crashed")
	}
	if err := c.Crash(9); !errors.Is(err, ErrNoSuchServer) {
		t.Errorf("crash missing server err = %v, want ErrNoSuchServer", err)
	}
}

func TestServerAccessors(t *testing.T) {
	c := mustCluster(t, 2)
	if _, err := c.PlaceRegister(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceRegister(0); err != nil {
		t.Fatal(err)
	}
	s, err := c.Server(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID() != 0 {
		t.Errorf("ID = %d, want 0", s.ID())
	}
	if s.NumObjects() != 2 {
		t.Errorf("NumObjects = %d, want 2", s.NumObjects())
	}
}

func TestObjectIDsAreUniqueAcrossServers(t *testing.T) {
	c := mustCluster(t, 4)
	seen := make(map[types.ObjectID]bool)
	for s := 0; s < 4; s++ {
		for i := 0; i < 5; i++ {
			id, err := c.PlaceRegister(types.ServerID(s))
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("duplicate object id %d", id)
			}
			seen[id] = true
		}
	}
}
