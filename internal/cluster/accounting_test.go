package cluster

import (
	"reflect"
	"testing"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// TestAccountingAcrossMembershipChanges drives one cluster through a
// crash → placement → add/remove sequence and pins the resource-complexity
// accounting after every step: ResourceComplexity is the paper's
// |delta^-1(S)|, PerServerCounts its per-server split (indexed by server
// ID over the whole never-reused ID space), Crashes counts only crashes —
// a departure or removal is not one — and the view tracks membership while
// N() tracks the ID space.
func TestAccountingAcrossMembershipChanges(t *testing.T) {
	c := mustCluster(t, 3)
	var r0, m1 types.ObjectID

	type expect struct {
		resource  int
		perServer []int
		crashes   int
		idSpace   int
		viewN     int
	}
	steps := []struct {
		name string
		do   func(t *testing.T)
		want expect
	}{
		{
			name: "fresh cluster",
			do:   func(t *testing.T) {},
			want: expect{0, []int{0, 0, 0}, 0, 3, 3},
		},
		{
			name: "place register on 0",
			do: func(t *testing.T) {
				var err error
				if r0, err = c.PlaceRegister(0); err != nil {
					t.Fatal(err)
				}
			},
			want: expect{1, []int{1, 0, 0}, 0, 3, 3},
		},
		{
			name: "place max-register on 1",
			do: func(t *testing.T) {
				var err error
				if m1, err = c.PlaceMaxRegister(1); err != nil {
					t.Fatal(err)
				}
			},
			want: expect{2, []int{1, 1, 0}, 0, 3, 3},
		},
		{
			name: "crash 2 keeps it a member",
			do: func(t *testing.T) {
				if err := c.Crash(2); err != nil {
					t.Fatal(err)
				}
			},
			want: expect{2, []int{1, 1, 0}, 1, 3, 3},
		},
		{
			name: "add server 3",
			do: func(t *testing.T) {
				if got := c.AddServer().ID(); got != 3 {
					t.Fatalf("joiner ID = %d, want 3", got)
				}
			},
			want: expect{2, []int{1, 1, 0, 0}, 1, 4, 4},
		},
		{
			name: "move register 0 -> 3",
			do: func(t *testing.T) {
				if err := c.MoveObject(r0, 3, baseobj.State{Val: types.TSValue{TS: 1, Val: 9}}); err != nil {
					t.Fatal(err)
				}
				if s, err := c.Delta(r0); err != nil || s != 3 {
					t.Fatalf("Delta = %d, %v; want 3", s, err)
				}
			},
			want: expect{2, []int{0, 1, 0, 1}, 1, 4, 4},
		},
		{
			name: "remove non-empty server fails",
			do: func(t *testing.T) {
				if err := c.RemoveServer(1); err == nil {
					t.Fatal("RemoveServer(1) succeeded with an object placed")
				}
			},
			want: expect{2, []int{0, 1, 0, 1}, 1, 4, 4},
		},
		{
			name: "move last object off 1, then remove it",
			do: func(t *testing.T) {
				if err := c.MoveObject(m1, 3, baseobj.State{}); err != nil {
					t.Fatal(err)
				}
				if err := c.RemoveServer(1); err != nil {
					t.Fatal(err)
				}
			},
			// Removal shrinks the view, not the ID space: PerServerCounts
			// stays indexed over every ID ever issued.
			want: expect{2, []int{0, 0, 0, 2}, 1, 4, 3},
		},
		{
			name: "remove non-member fails, accounting untouched",
			do: func(t *testing.T) {
				if err := c.RemoveServer(1); err == nil {
					t.Fatal("second RemoveServer(1) succeeded")
				}
			},
			want: expect{2, []int{0, 0, 0, 2}, 1, 4, 3},
		},
	}
	for _, step := range steps {
		step.do(t)
		if t.Failed() {
			t.Fatalf("step %q failed", step.name)
		}
		if got := c.ResourceComplexity(); got != step.want.resource {
			t.Errorf("%s: ResourceComplexity = %d, want %d", step.name, got, step.want.resource)
		}
		if got := c.PerServerCounts(); !reflect.DeepEqual(got, step.want.perServer) {
			t.Errorf("%s: PerServerCounts = %v, want %v", step.name, got, step.want.perServer)
		}
		if got := c.Crashes(); got != step.want.crashes {
			t.Errorf("%s: Crashes = %d, want %d", step.name, got, step.want.crashes)
		}
		if got := c.N(); got != step.want.idSpace {
			t.Errorf("%s: N = %d, want %d", step.name, got, step.want.idSpace)
		}
		if got := c.View().N(); got != step.want.viewN {
			t.Errorf("%s: View().N() = %d, want %d", step.name, got, step.want.viewN)
		}
	}

	// Epoch must have advanced once per membership or placement change that
	// affects routing: add, two moves, remove. Exact count is pinned so
	// accidental extra bumps (which force spurious client re-resolution)
	// show up here.
	if got := c.Epoch(); got != 4 {
		t.Errorf("Epoch = %d, want 4 (add + 2 moves + remove)", got)
	}
}
