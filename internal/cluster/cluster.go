// Package cluster models the collection S of fault-prone servers and the
// mapping delta: B -> S from base objects to the servers storing them
// (Section 2 / Appendix A.4 of the paper).
//
// The failure granularity is servers: crashing a server instantaneously
// crashes every base object mapped to it. The cluster also implements the
// paper's resource-complexity accounting: the number of base objects
// |delta^-1(S)| and the per-server object counts |delta^-1({s})|.
//
// Servers are independent fault domains, and the locking mirrors that:
// every server guards its own object table, the cluster-wide delta mapping
// is read-mostly (placement writes, everything else reads), and crash flags
// are lock-free atomics. Read-path lookups (Delta, Object, Route, Crashed)
// therefore never contend with Apply traffic on other servers — the
// property package fabric's per-server dispatch lanes build on.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// Errors reported by cluster operations.
var (
	// ErrNoSuchServer is returned for server IDs outside [0, n).
	ErrNoSuchServer = errors.New("cluster: no such server")
	// ErrNoSuchObject is returned for unknown object IDs.
	ErrNoSuchObject = errors.New("cluster: no such object")
	// ErrServerCrashed is returned when applying an operation to an
	// object on a crashed server.
	ErrServerCrashed = errors.New("cluster: server crashed")
)

// Server is a fault-prone server hosting base objects.
type Server struct {
	id      types.ServerID
	crashed atomic.Bool

	mu      sync.RWMutex
	objects map[types.ObjectID]baseobj.Object
}

// ID returns the server's identifier.
func (s *Server) ID() types.ServerID { return s.id }

// Crashed reports whether the server has crashed.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// NumObjects returns |delta^-1({s})|, the number of base objects stored on
// the server.
func (s *Server) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// place registers an object on the server.
func (s *Server) place(obj baseobj.Object) {
	s.mu.Lock()
	if s.objects == nil {
		s.objects = make(map[types.ObjectID]baseobj.Object)
	}
	s.objects[obj.ID()] = obj
	s.mu.Unlock()
}

// object returns the hosted object, if any.
func (s *Server) object(obj types.ObjectID) (baseobj.Object, bool) {
	s.mu.RLock()
	o, ok := s.objects[obj]
	s.mu.RUnlock()
	return o, ok
}

// apply applies inv to the hosted object, or fails if the server crashed.
func (s *Server) apply(obj types.ObjectID, client types.ClientID, inv baseobj.Invocation) (baseobj.Response, error) {
	if s.crashed.Load() {
		return baseobj.Response{}, fmt.Errorf("%w: server %d", ErrServerCrashed, s.id)
	}
	o, ok := s.object(obj)
	if !ok {
		return baseobj.Response{}, fmt.Errorf("%w: object %d on server %d", ErrNoSuchObject, obj, s.id)
	}
	// The object's own mutex is the linearization point; holding a
	// server-wide lock across Apply would serialize unrelated objects.
	return o.Apply(client, inv)
}

// Cluster is the set of servers plus the delta mapping.
type Cluster struct {
	servers []*Server
	crashes atomic.Int32

	// mu guards the delta and object tables. Placement is rare (setup
	// time) and every hot-path access is a read, hence the RWMutex.
	mu      sync.RWMutex
	delta   map[types.ObjectID]types.ServerID
	objects map[types.ObjectID]baseobj.Object
	nextID  types.ObjectID
}

// New creates a cluster of n servers with IDs 0..n-1 and no objects.
func New(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	c := &Cluster{
		servers: make([]*Server, n),
		delta:   make(map[types.ObjectID]types.ServerID),
		objects: make(map[types.ObjectID]baseobj.Object),
	}
	for i := range c.servers {
		c.servers[i] = &Server{id: types.ServerID(i)}
	}
	return c, nil
}

// N returns the number of servers, |S|.
func (c *Cluster) N() int { return len(c.servers) }

// Server returns the server with the given ID.
func (c *Cluster) Server(id types.ServerID) (*Server, error) {
	if int(id) < 0 || int(id) >= len(c.servers) {
		return nil, fmt.Errorf("%w: %d (n=%d)", ErrNoSuchServer, id, len(c.servers))
	}
	return c.servers[id], nil
}

// allocID hands out the next object ID.
func (c *Cluster) allocID() types.ObjectID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	return id
}

// placeObject records delta(obj) = server and hosts the object.
func (c *Cluster) placeObject(obj baseobj.Object, server types.ServerID) error {
	s, err := c.Server(server)
	if err != nil {
		return err
	}
	s.place(obj)
	c.mu.Lock()
	c.delta[obj.ID()] = server
	c.objects[obj.ID()] = obj
	c.mu.Unlock()
	return nil
}

// PlaceRegister creates a read/write register on the given server and
// returns its ID. Options restrict the writer set (z-writer registers).
func (c *Cluster) PlaceRegister(server types.ServerID, opts ...baseobj.RegisterOption) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewRegister(id, opts...), server); err != nil {
		return 0, err
	}
	return id, nil
}

// PlaceMaxRegister creates a max-register on the given server.
func (c *Cluster) PlaceMaxRegister(server types.ServerID) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewMaxRegister(id), server); err != nil {
		return 0, err
	}
	return id, nil
}

// PlaceCASCell creates a CAS cell on the given server.
func (c *Cluster) PlaceCASCell(server types.ServerID) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewCASCell(id), server); err != nil {
		return 0, err
	}
	return id, nil
}

// Delta returns delta(obj), the server storing the object.
func (c *Cluster) Delta(obj types.ObjectID) (types.ServerID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.delta[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	return s, nil
}

// Object returns the base object with the given ID.
func (c *Cluster) Object(obj types.ObjectID) (baseobj.Object, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.objects[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	return o, nil
}

// Route resolves an object to its hosting server and the object itself in
// one read-locked lookup. Package fabric caches routes so repeated
// operations on an object never touch the cluster-wide tables again.
func (c *Cluster) Route(obj types.ObjectID) (*Server, baseobj.Object, error) {
	c.mu.RLock()
	server, ok := c.delta[obj]
	o := c.objects[obj]
	c.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	return c.servers[server], o, nil
}

// Apply routes a low-level invocation to the server hosting the object and
// applies it atomically. It is a direct testing/tooling entry point: the
// fabric resolves a Route once and applies through it instead, and (unlike
// this method, which returns ErrServerCrashed) silently drops operations on
// crashed servers so they stay pending forever.
func (c *Cluster) Apply(obj types.ObjectID, client types.ClientID, inv baseobj.Invocation) (baseobj.Response, error) {
	server, err := c.Delta(obj)
	if err != nil {
		return baseobj.Response{}, err
	}
	return c.servers[server].apply(obj, client, inv)
}

// Crash crashes the given server and all objects mapped to it.
func (c *Cluster) Crash(server types.ServerID) error {
	s, err := c.Server(server)
	if err != nil {
		return err
	}
	if s.crashed.CompareAndSwap(false, true) {
		c.crashes.Add(1)
	}
	return nil
}

// Crashes returns the number of crashed servers.
func (c *Cluster) Crashes() int { return int(c.crashes.Load()) }

// ResourceComplexity returns |delta^-1(S)|: the total number of base
// objects placed in the cluster. This is the paper's space measure.
func (c *Cluster) ResourceComplexity() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects)
}

// PerServerCounts returns |delta^-1({s})| for every server, indexed by
// server ID.
func (c *Cluster) PerServerCounts() []int {
	counts := make([]int, len(c.servers))
	for i, s := range c.servers {
		counts[i] = s.NumObjects()
	}
	return counts
}

// ObjectsOn returns the IDs of all objects mapped to the given server, in
// ascending order.
func (c *Cluster) ObjectsOn(server types.ServerID) []types.ObjectID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ids []types.ObjectID
	for obj, s := range c.delta {
		if s == server {
			ids = append(ids, obj)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AllObjects returns the IDs of every placed object in ascending order.
func (c *Cluster) AllObjects() []types.ObjectID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]types.ObjectID, 0, len(c.objects))
	for obj := range c.objects {
		ids = append(ids, obj)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
