// Package cluster models the collection S of fault-prone servers and the
// mapping delta: B -> S from base objects to the servers storing them
// (Section 2 / Appendix A.4 of the paper).
//
// The failure granularity is servers: crashing a server instantaneously
// crashes every base object mapped to it. The cluster also implements the
// paper's resource-complexity accounting: the number of base objects
// |delta^-1(S)| and the per-server object counts |delta^-1({s})|.
//
// Servers are independent fault domains, and the locking mirrors that:
// every server guards its own object table, the cluster-wide delta mapping
// is read-mostly (placement writes, everything else reads), and crash flags
// are lock-free atomics. Read-path lookups (Delta, Object, Route, Crashed)
// therefore never contend with Apply traffic on other servers — the
// property package fabric's per-server dispatch lanes build on.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/baseobj"
	"repro/internal/types"
)

// Errors reported by cluster operations.
var (
	// ErrNoSuchServer is returned for server IDs outside [0, n).
	ErrNoSuchServer = errors.New("cluster: no such server")
	// ErrNoSuchObject is returned for unknown object IDs.
	ErrNoSuchObject = errors.New("cluster: no such object")
	// ErrServerCrashed is returned when applying an operation to an
	// object on a crashed server.
	ErrServerCrashed = errors.New("cluster: server crashed")
	// ErrServerNotEmpty is returned when removing a member that still
	// hosts objects: state must be transferred off first (MoveObject).
	ErrServerNotEmpty = errors.New("cluster: server still hosts objects")
	// ErrNotMember is returned when removing a server that is not in the
	// current view.
	ErrNotMember = errors.New("cluster: server is not a view member")
	// ErrObjectRetired is returned when routing to an object a view
	// transition removed. Unlike ErrNoSuchObject (an ID that never
	// existed) it marks a stale route: the operation never applied and
	// may safely retry against the construction's new placement.
	ErrObjectRetired = errors.New("cluster: object retired by a view transition")
)

// Server is a fault-prone server hosting base objects.
type Server struct {
	id        types.ServerID
	crashed   atomic.Bool
	departing atomic.Bool

	mu      sync.RWMutex
	objects map[types.ObjectID]baseobj.Object
}

// ID returns the server's identifier.
func (s *Server) ID() types.ServerID { return s.id }

// Crashed reports whether the server has crashed.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// Departing reports whether the server is leaving the view: a
// reconfiguration froze it for state transfer. Unlike a crash it does not
// count toward Crashes() — the paper's fail-stop budget f is about
// failures, and a planned leave hands its objects over before going.
func (s *Server) Departing() bool { return s.departing.Load() }

// Depart freezes the server for a view change. New operations routed here
// fail with a retryable view-change error instead of silently pending.
func (s *Server) Depart() { s.departing.Store(true) }

// Undepart lifts a freeze set by Depart: an aborted transition returns the
// server to service. It never resurrects a crashed server — the crash flag
// is checked before the departing flag on every fabric path.
func (s *Server) Undepart() { s.departing.Store(false) }

// NumObjects returns |delta^-1({s})|, the number of base objects stored on
// the server.
func (s *Server) NumObjects() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// BytesStored returns the payload bytes currently held in the server's
// object table: the sum of baseobj.Sizer over objects implementing it.
// Objects without payload (CAS cells, plain TSValue registers) count 0 —
// the metric is the *value bytes* axis the space bounds are about, not
// per-object bookkeeping overhead.
func (s *Server) BytesStored() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, o := range s.objects {
		if sz, ok := o.(baseobj.Sizer); ok {
			n += int64(sz.SizeBytes())
		}
	}
	return n
}

// place registers an object on the server.
func (s *Server) place(obj baseobj.Object) {
	s.mu.Lock()
	if s.objects == nil {
		s.objects = make(map[types.ObjectID]baseobj.Object)
	}
	s.objects[obj.ID()] = obj
	s.mu.Unlock()
}

// remove drops an object from the server's table (state transfer).
func (s *Server) remove(obj types.ObjectID) {
	s.mu.Lock()
	delete(s.objects, obj)
	s.mu.Unlock()
}

// object returns the hosted object, if any.
func (s *Server) object(obj types.ObjectID) (baseobj.Object, bool) {
	s.mu.RLock()
	o, ok := s.objects[obj]
	s.mu.RUnlock()
	return o, ok
}

// apply applies inv to the hosted object, or fails if the server crashed.
func (s *Server) apply(obj types.ObjectID, client types.ClientID, inv baseobj.Invocation) (baseobj.Response, error) {
	if s.crashed.Load() {
		return baseobj.Response{}, fmt.Errorf("%w: server %d", ErrServerCrashed, s.id)
	}
	o, ok := s.object(obj)
	if !ok {
		return baseobj.Response{}, fmt.Errorf("%w: object %d on server %d", ErrNoSuchObject, obj, s.id)
	}
	// The object's own mutex is the linearization point; holding a
	// server-wide lock across Apply would serialize unrelated objects.
	return o.Apply(client, inv)
}

// View is one membership epoch: the ordered set of servers currently
// eligible for placement and quorums. Epochs advance on every membership
// or placement change (AddServer, MoveObject, RemoveServer); package
// fabric validates its cached routes against the current epoch, so a
// bumped epoch is exactly "every stale route must re-resolve".
type View struct {
	// Epoch is the view's activation number, strictly increasing.
	Epoch uint64
	// Members are the view's servers in ascending ID order.
	Members []types.ServerID
	// F is the view's failure budget. It lives in the view — not at call
	// sites — so a resize that changes f can never race a quorum threshold
	// computed from a caller's remembered budget: the threshold and the
	// member set come from the same epoch snapshot.
	F int
}

// N returns the view's cardinality.
func (v View) N() int { return len(v.Members) }

// Quorum returns the view's quorum threshold n-f, derived entirely from
// the snapshot: no caller-supplied f can go stale across a resize.
func (v View) Quorum() int { return len(v.Members) - v.F }

// Cluster is the set of servers plus the delta mapping.
type Cluster struct {
	// servers is the append-only server list, published copy-on-write so
	// the hot lock-free readers (Server, Route, Apply) stay safe while
	// AddServer grows it. Server IDs are slice indexes and never reused —
	// a removed member keeps its slot, so stale routes still resolve to
	// its (sealed, empty) shell instead of a neighbour's objects.
	servers atomic.Pointer[[]*Server]
	crashes atomic.Int32

	// epoch is the current view's activation number, read lock-free on
	// the fabric's route hot path.
	epoch atomic.Uint64

	// mu guards the delta and object tables plus the membership list and
	// the view's failure budget. Placement and membership changes are
	// rare; every hot-path access is a read, hence the RWMutex.
	mu      sync.RWMutex
	members []types.ServerID
	f       int
	delta   map[types.ObjectID]types.ServerID
	objects map[types.ObjectID]baseobj.Object
	retired map[types.ObjectID]struct{}
	nextID  types.ObjectID
}

// New creates a cluster of n servers with IDs 0..n-1 and no objects; all n
// are members of the initial view (epoch 0).
func New(n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: n must be positive, got %d", n)
	}
	c := &Cluster{
		delta:   make(map[types.ObjectID]types.ServerID),
		objects: make(map[types.ObjectID]baseobj.Object),
		retired: make(map[types.ObjectID]struct{}),
	}
	servers := make([]*Server, n)
	c.members = make([]types.ServerID, n)
	for i := range servers {
		servers[i] = &Server{id: types.ServerID(i)}
		c.members[i] = types.ServerID(i)
	}
	c.servers.Store(&servers)
	return c, nil
}

// serverList returns the current published server list.
func (c *Cluster) serverList() []*Server { return *c.servers.Load() }

// N returns the size of the server ID space (the append-only server list,
// including departed members). The current view's cardinality is View().N().
func (c *Cluster) N() int { return len(c.serverList()) }

// Epoch returns the current view's epoch, lock-free.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// View returns the current view: epoch plus member list. The snapshot is
// internally consistent — members are read under the membership lock and
// the epoch re-checked after, retrying on a concurrent change.
func (c *Cluster) View() View {
	for {
		e := c.epoch.Load()
		c.mu.RLock()
		members := make([]types.ServerID, len(c.members))
		copy(members, c.members)
		f := c.f
		c.mu.RUnlock()
		if c.epoch.Load() == e {
			return View{Epoch: e, Members: members, F: f}
		}
	}
}

// F returns the current view's failure budget.
func (c *Cluster) F() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.f
}

// SetF records the view's failure budget, activating a new epoch when the
// budget actually changes: new quorum thresholds are a view change even
// when the member set is untouched. Constructions set it at build time;
// resizes change it atomically through CommitView instead.
func (c *Cluster) SetF(f int) {
	c.mu.Lock()
	changed := c.f != f
	c.f = f
	c.mu.Unlock()
	if changed {
		c.epoch.Add(1)
	}
}

// Members returns the current view's member IDs in ascending order.
func (c *Cluster) Members() []types.ServerID { return c.View().Members }

// AddServer appends a fresh server (the next unused ID) to the server list
// and admits it to the view, activating a new epoch. The joiner starts with
// an empty object table; state transfer (MoveObject) makes it useful.
func (c *Cluster) AddServer() *Server {
	c.mu.Lock()
	old := c.serverList()
	s := &Server{id: types.ServerID(len(old))}
	grown := make([]*Server, len(old)+1)
	copy(grown, old)
	grown[len(old)] = s
	c.servers.Store(&grown)
	c.members = append(c.members, s.id)
	sort.Slice(c.members, func(i, j int) bool { return c.members[i] < c.members[j] })
	c.mu.Unlock()
	c.epoch.Add(1)
	return s
}

// RemoveServer retires a member from the view, activating a new epoch. The
// server must be empty (every object moved off) and keeps its ID slot so
// stale routes still resolve; it never counts as a crash.
func (c *Cluster) RemoveServer(id types.ServerID) error {
	s, err := c.Server(id)
	if err != nil {
		return err
	}
	if n := s.NumObjects(); n != 0 {
		return fmt.Errorf("%w: server %d has %d objects", ErrServerNotEmpty, id, n)
	}
	c.mu.Lock()
	idx := -1
	for i, m := range c.members {
		if m == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNotMember, id)
	}
	c.members = append(c.members[:idx], c.members[idx+1:]...)
	c.mu.Unlock()
	c.epoch.Add(1)
	return nil
}

// CommitView atomically activates a resized view: every server in leave is
// retired from the member list and the failure budget becomes f, under ONE
// epoch bump. This is the activation step of a batched transition — no
// reader can ever observe some leavers gone with others still present, or
// the new member set paired with the old threshold. Each leaver must be a
// member and must be empty (state moved off first); on any validation
// failure nothing changes.
func (c *Cluster) CommitView(leave []types.ServerID, f int) error {
	for _, id := range leave {
		s, err := c.Server(id)
		if err != nil {
			return err
		}
		if n := s.NumObjects(); n != 0 {
			return fmt.Errorf("%w: server %d has %d objects", ErrServerNotEmpty, id, n)
		}
	}
	c.mu.Lock()
	kept := c.members[:0:0]
	for _, m := range c.members {
		retired := false
		for _, id := range leave {
			if m == id {
				retired = true
				break
			}
		}
		if !retired {
			kept = append(kept, m)
		}
	}
	if len(kept) != len(c.members)-len(leave) {
		c.mu.Unlock()
		return fmt.Errorf("%w: leave set %v not all members of %v", ErrNotMember, leave, c.members)
	}
	c.members = kept
	c.f = f
	c.mu.Unlock()
	c.epoch.Add(1)
	return nil
}

// MoveObject transfers an object to a new hosting server: a fresh unsealed
// clone holding the transferred state is placed on the target, delta is
// repointed, and the epoch advances so every cached route to the old copy
// re-resolves. The caller (the fabric's reconfiguration coordinator) must
// have sealed the source copy first — the clone's state is then final — and
// removes nothing until the new mapping is published, so there is no window
// where the object is unreachable.
func (c *Cluster) MoveObject(obj types.ObjectID, to types.ServerID, state baseobj.State) error {
	target, err := c.Server(to)
	if err != nil {
		return err
	}
	if target.Crashed() {
		return fmt.Errorf("%w: cannot move object %d to crashed server %d", ErrServerCrashed, obj, to)
	}
	c.mu.RLock()
	from, ok := c.delta[obj]
	o := c.objects[obj]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	if from == to {
		return nil
	}
	clone, err := baseobj.CloneAtState(o, state)
	if err != nil {
		return err
	}
	target.place(clone)
	c.mu.Lock()
	c.delta[obj] = to
	c.objects[obj] = clone
	c.mu.Unlock()
	c.epoch.Add(1)
	if src, err := c.Server(from); err == nil {
		src.remove(obj)
	}
	return nil
}

// ReplaceObject swaps an object's hosted copy for a fresh unsealed clone
// holding the given state, on the same server, activating a new epoch so
// cached routes re-resolve to the clone. The reconfiguration coordinator
// uses it to roll back a sealed-but-unmoved object when a transition
// aborts: base objects have no unseal, so the rollback is a clone.
func (c *Cluster) ReplaceObject(obj types.ObjectID, state baseobj.State) error {
	c.mu.RLock()
	server, ok := c.delta[obj]
	o := c.objects[obj]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	clone, err := baseobj.CloneAtState(o, state)
	if err != nil {
		return err
	}
	s, err := c.Server(server)
	if err != nil {
		return err
	}
	s.place(clone)
	c.mu.Lock()
	c.objects[obj] = clone
	c.mu.Unlock()
	c.epoch.Add(1)
	return nil
}

// RemoveObject retires a base object from the cluster: delta forgets it,
// the hosting server drops it, and the epoch advances so stale routes fail
// instead of resolving to the retired copy. Constructions call it when a
// resize shrinks their base-object set (the inverse of Place*); retiring
// an unknown object is an error.
func (c *Cluster) RemoveObject(obj types.ObjectID) error {
	c.mu.Lock()
	server, ok := c.delta[obj]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	delete(c.delta, obj)
	delete(c.objects, obj)
	// Tombstone the ID: an operation that snapshotted the old placement
	// before the transition may still route here afterwards, and it must
	// see a retryable stale-route error, not a hard unknown-object one.
	c.retired[obj] = struct{}{}
	c.mu.Unlock()
	if s, err := c.Server(server); err == nil {
		s.remove(obj)
	}
	c.epoch.Add(1)
	return nil
}

// Server returns the server with the given ID.
func (c *Cluster) Server(id types.ServerID) (*Server, error) {
	servers := c.serverList()
	if int(id) < 0 || int(id) >= len(servers) {
		return nil, fmt.Errorf("%w: %d (n=%d)", ErrNoSuchServer, id, len(servers))
	}
	return servers[id], nil
}

// allocID hands out the next object ID.
func (c *Cluster) allocID() types.ObjectID {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.nextID
	c.nextID++
	return id
}

// placeObject records delta(obj) = server and hosts the object.
func (c *Cluster) placeObject(obj baseobj.Object, server types.ServerID) error {
	s, err := c.Server(server)
	if err != nil {
		return err
	}
	s.place(obj)
	c.mu.Lock()
	c.delta[obj.ID()] = server
	c.objects[obj.ID()] = obj
	c.mu.Unlock()
	return nil
}

// PlaceRegister creates a read/write register on the given server and
// returns its ID. Options restrict the writer set (z-writer registers).
func (c *Cluster) PlaceRegister(server types.ServerID, opts ...baseobj.RegisterOption) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewRegister(id, opts...), server); err != nil {
		return 0, err
	}
	return id, nil
}

// PlaceMaxRegister creates a max-register on the given server.
func (c *Cluster) PlaceMaxRegister(server types.ServerID) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewMaxRegister(id), server); err != nil {
		return 0, err
	}
	return id, nil
}

// PlaceCASCell creates a CAS cell on the given server.
func (c *Cluster) PlaceCASCell(server types.ServerID) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewCASCell(id), server); err != nil {
		return 0, err
	}
	return id, nil
}

// PlaceFragStore creates an erasure-coded fragment store on the given
// server.
func (c *Cluster) PlaceFragStore(server types.ServerID) (types.ObjectID, error) {
	id := c.allocID()
	if err := c.placeObject(baseobj.NewFragStore(id), server); err != nil {
		return 0, err
	}
	return id, nil
}

// Delta returns delta(obj), the server storing the object.
func (c *Cluster) Delta(obj types.ObjectID) (types.ServerID, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.delta[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	return s, nil
}

// Object returns the base object with the given ID.
func (c *Cluster) Object(obj types.ObjectID) (baseobj.Object, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	o, ok := c.objects[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	return o, nil
}

// Route resolves an object to its hosting server and the object itself in
// one read-locked lookup. Package fabric caches routes so repeated
// operations on an object never touch the cluster-wide tables again.
func (c *Cluster) Route(obj types.ObjectID) (*Server, baseobj.Object, error) {
	c.mu.RLock()
	server, ok := c.delta[obj]
	o := c.objects[obj]
	_, wasRetired := c.retired[obj]
	c.mu.RUnlock()
	if !ok {
		if wasRetired {
			return nil, nil, fmt.Errorf("%w: %d", ErrObjectRetired, obj)
		}
		return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchObject, obj)
	}
	return c.serverList()[server], o, nil
}

// Apply routes a low-level invocation to the server hosting the object and
// applies it atomically. It is a direct testing/tooling entry point: the
// fabric resolves a Route once and applies through it instead, and (unlike
// this method, which returns ErrServerCrashed) silently drops operations on
// crashed servers so they stay pending forever.
func (c *Cluster) Apply(obj types.ObjectID, client types.ClientID, inv baseobj.Invocation) (baseobj.Response, error) {
	server, err := c.Delta(obj)
	if err != nil {
		return baseobj.Response{}, err
	}
	return c.serverList()[server].apply(obj, client, inv)
}

// Crash crashes the given server and all objects mapped to it.
func (c *Cluster) Crash(server types.ServerID) error {
	s, err := c.Server(server)
	if err != nil {
		return err
	}
	if s.crashed.CompareAndSwap(false, true) {
		c.crashes.Add(1)
	}
	return nil
}

// Crashes returns the number of crashed servers.
func (c *Cluster) Crashes() int { return int(c.crashes.Load()) }

// ResourceComplexity returns |delta^-1(S)|: the total number of base
// objects placed in the cluster. This is the paper's space measure.
func (c *Cluster) ResourceComplexity() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.objects)
}

// PerServerCounts returns |delta^-1({s})| for every server, indexed by
// server ID.
func (c *Cluster) PerServerCounts() []int {
	servers := c.serverList()
	counts := make([]int, len(servers))
	for i, s := range servers {
		counts[i] = s.NumObjects()
	}
	return counts
}

// PerServerBytes returns BytesStored for every server, indexed by server
// ID — the bytes-per-server space axis measured against the replication
// and coding bounds.
func (c *Cluster) PerServerBytes() []int64 {
	servers := c.serverList()
	bytes := make([]int64, len(servers))
	for i, s := range servers {
		bytes[i] = s.BytesStored()
	}
	return bytes
}

// TotalBytes returns the sum of PerServerBytes.
func (c *Cluster) TotalBytes() int64 {
	var n int64
	for _, b := range c.PerServerBytes() {
		n += b
	}
	return n
}

// ObjectsOn returns the IDs of all objects mapped to the given server, in
// ascending order.
func (c *Cluster) ObjectsOn(server types.ServerID) []types.ObjectID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var ids []types.ObjectID
	for obj, s := range c.delta {
		if s == server {
			ids = append(ids, obj)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AllObjects returns the IDs of every placed object in ascending order.
func (c *Cluster) AllObjects() []types.ObjectID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]types.ObjectID, 0, len(c.objects))
	for obj := range c.objects {
		ids = append(ids, obj)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
