// Package baseobj implements the three base-object types studied by the
// paper (Table 1): multi-writer/multi-reader read/write registers,
// max-registers, and compare-and-swap (CAS) cells.
//
// A base object is a sequential state machine that a server applies
// operations to atomically; the asynchrony between a client's trigger and
// the object's response lives in package fabric, not here. Objects store
// types.TSValue so that every emulation algorithm can layer timestamps on
// top of the raw primitive.
//
// Registers optionally enforce a bounded writer set: Theorem 3 only needs
// z-writer registers, and the enforcement lets tests prove that the upper
// bound construction never exceeds its declared writer bound.
package baseobj

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/types"
)

// Kind enumerates the base object types of Table 1.
type Kind int

const (
	// KindRegister is a read/write register.
	KindRegister Kind = iota + 1
	// KindMaxRegister is a max-register (write-max / read-max).
	KindMaxRegister
	// KindCAS is a compare-and-swap cell.
	KindCAS
	// KindFragStore is an erasure-coded fragment store: it holds one
	// committed fragment of a striped value plus the pending fragments of
	// newer, not-yet-committed stripes (package coded's per-server object).
	KindFragStore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRegister:
		return "register"
	case KindMaxRegister:
		return "max-register"
	case KindCAS:
		return "cas"
	case KindFragStore:
		return "frag-store"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// OpCode enumerates the low-level operations base objects support.
type OpCode int

const (
	// OpRead reads a register.
	OpRead OpCode = iota + 1
	// OpWrite writes a register.
	OpWrite
	// OpReadMax reads a max-register.
	OpReadMax
	// OpWriteMax writes a max-register (takes effect only if larger).
	OpWriteMax
	// OpCAS performs compare-and-swap and returns the previous value.
	OpCAS
	// OpPutFrag stores one erasure-coded fragment (Invocation.Frag) in a
	// fragment store.
	OpPutFrag
	// OpGetFrags reads every fragment a store holds (committed + pending).
	OpGetFrags
	// OpCommitFrag advances a fragment store's commit watermark
	// (Invocation.Arg), garbage-collecting superseded stripes.
	OpCommitFrag
	// OpFragTS reads only the store's maximum known stripe timestamp (the
	// cheap collect for a coded write's timestamp round).
	OpFragTS
)

// String implements fmt.Stringer.
func (c OpCode) String() string {
	switch c {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReadMax:
		return "read-max"
	case OpWriteMax:
		return "write-max"
	case OpCAS:
		return "cas"
	case OpPutFrag:
		return "put-frag"
	case OpGetFrags:
		return "get-frags"
	case OpCommitFrag:
		return "commit-frag"
	case OpFragTS:
		return "frag-ts"
	default:
		return fmt.Sprintf("op(%d)", int(c))
	}
}

// IsWrite reports whether the op code mutates object state. Covering
// arguments only care about mutating operations.
func (c OpCode) IsWrite() bool {
	switch c {
	case OpWrite, OpWriteMax, OpCAS, OpPutFrag, OpCommitFrag:
		return true
	default:
		return false
	}
}

// IsRead reports whether the op code is a pure read (OpRead / OpReadMax) —
// the only operations a snapshot scan (fabric.TriggerScan) may carry.
func (c OpCode) IsRead() bool { return c == OpRead || c == OpReadMax }

// Invocation is a low-level operation invocation.
type Invocation struct {
	// Op selects the operation.
	Op OpCode
	// Arg is the argument of OpWrite and OpWriteMax, and the commit
	// watermark of OpCommitFrag.
	Arg types.TSValue
	// Exp and New are the arguments of OpCAS.
	Exp types.TSValue
	New types.TSValue
	// Data is the payload riding with OpWrite/OpWriteMax when the
	// emulation stores real value bytes (replicated payload mode). The
	// object takes ownership; callers must not mutate it after Apply.
	Data types.Payload
	// Frag is the fragment stored by OpPutFrag (nil for every other op).
	// The object takes ownership of Frag.Data.
	Frag *Fragment
}

// Response is a low-level operation response.
type Response struct {
	// Op echoes the invocation's op code.
	Op OpCode
	// Val carries the result of OpRead and OpReadMax, the previous value
	// for OpCAS, and the maximum known stripe timestamp for OpGetFrags /
	// OpFragTS. It is the zero TSValue for plain writes.
	Val types.TSValue
	// Data is the stored payload returned by OpRead/OpReadMax on objects
	// holding payload bytes. Callers must not mutate it.
	Data types.Payload
	// Frags carries the fragments returned by OpGetFrags (committed
	// first when present, then pending in unspecified order). Callers
	// must not mutate the fragments' Data.
	Frags []Fragment
}

// Fragment is one erasure-coded piece of a striped register value,
// tagged with the write's timestamp so readers only ever combine
// fragments of the same write.
type Fragment struct {
	// TS is the stripe's write timestamp; TS.Val is the logical value,
	// so checkers and state transfer see the ordinary value domain.
	TS types.TSValue
	// Index is the fragment's position in the stripe (0..n-1).
	Index int
	// K is the stripe's reconstruction threshold.
	K int
	// Length is the total payload length in bytes before striping.
	Length int
	// Committed marks the store's committed fragment in OpGetFrags
	// responses and state transfer.
	Committed bool
	// Data holds the fragment bytes.
	Data types.Payload
}

// Clone returns a deep copy of the fragment.
func (f Fragment) Clone() Fragment {
	f.Data = f.Data.Clone()
	return f
}

// State is the full transferable state of a base object: the TSValue
// every kind stores, the replicated payload bytes (registers in payload
// mode), and the fragment set (fragment stores, where Val is the commit
// watermark). Reconfiguration moves State between servers; the classic
// TSValue-only Sealer path stays for objects without payload.
type State struct {
	Val   types.TSValue
	Data  types.Payload
	Frags []Fragment
}

// Errors returned by Apply.
var (
	// ErrWrongOp is returned when an invocation's op code does not match
	// the object kind (e.g. OpCAS on a register).
	ErrWrongOp = errors.New("baseobj: operation not supported by object kind")
	// ErrUnauthorizedWriter is returned when a client outside a register's
	// declared writer set attempts a write.
	ErrUnauthorizedWriter = errors.New("baseobj: client is not in the register's writer set")
	// ErrSealed is returned when a mutating operation reaches an object that
	// was sealed for state transfer (view reconfiguration). Sealing happens
	// under the object's own state lock, so the sealed snapshot and the
	// rejection of later writes are atomic: a write either lands before the
	// seal (and its effect is in the transferred state) or it fails with
	// ErrSealed (and never took effect anywhere). Pure reads still succeed —
	// they observe the final old-view state, which stays the current value
	// until the first new-view write.
	ErrSealed = errors.New("baseobj: object sealed for state transfer")
)

// Object is a base object: a sequential state machine applied atomically.
// Implementations are safe for concurrent use; Apply is the object's
// linearization point.
type Object interface {
	// ID returns the object's cluster-wide identifier.
	ID() types.ObjectID
	// Kind returns the object's type.
	Kind() Kind
	// Apply atomically applies inv on behalf of client and returns the
	// response. It returns an error for malformed invocations; errors
	// model protocol misuse, not failures (failures live in the fabric).
	Apply(client types.ClientID, inv Invocation) (Response, error)
	// Peek returns the current state without linearizing an operation.
	// It exists for checkers and reports only; emulation algorithms must
	// never call it.
	Peek() types.TSValue
}

// Locker is implemented by objects whose state lock can be taken
// externally, so a caller may apply a *group* of operations against several
// objects as one consistent cut: lock every object (in ascending object-ID
// order, the package-wide lock order), apply through ApplyLocked, unlock.
// The fabric's snapshot scans (fabric.TriggerScan) are the only caller; the
// single-object Apply path never pays for the seam.
type Locker interface {
	// LockState acquires the object's state lock.
	LockState()
	// UnlockState releases the object's state lock.
	UnlockState()
	// ApplyLocked is Apply with the state lock already held by the caller.
	ApplyLocked(client types.ClientID, inv Invocation) (Response, error)
}

// Sealer is implemented by objects that support state transfer: Seal
// atomically snapshots the current state and rejects every later mutating
// operation with ErrSealed, and Restore loads transferred state into a
// fresh copy. All three base-object types implement it.
type Sealer interface {
	// Seal marks the object sealed and returns the state at the seal point.
	Seal() types.TSValue
	// Restore overwrites the object's state (setup/transfer only — never
	// concurrent with Apply traffic on an unsealed object's writers).
	Restore(v types.TSValue)
}

// StateSealer extends Sealer with full-state transfer: SealState seals
// the object and snapshots everything it stores (TSValue, payload bytes,
// fragments), RestoreState loads it into a fresh copy. All base-object
// types implement it; reconfiguration prefers it over the TSValue-only
// Sealer so payload-carrying objects migrate losslessly.
type StateSealer interface {
	SealState() State
	RestoreState(State)
}

// StatePeeker returns the full current state without linearizing an
// operation — the payload analogue of Object.Peek, used by lane backends
// that mirror object state on placement.
type StatePeeker interface {
	PeekState() State
}

// Sizer reports the payload bytes an object currently stores. The
// cluster's bytes-per-server space metric sums it across each server's
// object table; objects that hold no payload may omit it (they count as
// their fixed TSValue footprint).
type Sizer interface {
	SizeBytes() int
}

// Compile-time interface compliance checks.
var (
	_ Object      = (*Register)(nil)
	_ Object      = (*MaxRegister)(nil)
	_ Object      = (*CASCell)(nil)
	_ Object      = (*FragStore)(nil)
	_ Locker      = (*Register)(nil)
	_ Locker      = (*MaxRegister)(nil)
	_ Locker      = (*CASCell)(nil)
	_ Locker      = (*FragStore)(nil)
	_ Sealer      = (*Register)(nil)
	_ Sealer      = (*MaxRegister)(nil)
	_ Sealer      = (*CASCell)(nil)
	_ Sealer      = (*FragStore)(nil)
	_ StateSealer = (*Register)(nil)
	_ StateSealer = (*MaxRegister)(nil)
	_ StateSealer = (*CASCell)(nil)
	_ StateSealer = (*FragStore)(nil)
	_ StatePeeker = (*Register)(nil)
	_ StatePeeker = (*MaxRegister)(nil)
	_ StatePeeker = (*FragStore)(nil)
	_ Sizer       = (*Register)(nil)
	_ Sizer       = (*MaxRegister)(nil)
	_ Sizer       = (*FragStore)(nil)
)

// CloneAt builds a fresh, unsealed object of the same identity (ID, kind,
// and — for registers — writer set) holding the given TSValue state. It is
// CloneAtState without payload; callers migrating payload-carrying
// objects must use CloneAtState.
func CloneAt(o Object, v types.TSValue) (Object, error) {
	return CloneAtState(o, State{Val: v})
}

// CloneAtState builds a fresh, unsealed object of the same identity
// holding the given full state. Reconfiguration uses it to materialize a
// migrated object on its new server while the sealed original keeps
// answering stale-route reads.
func CloneAtState(o Object, st State) (Object, error) {
	switch src := o.(type) {
	case *Register:
		var opts []RegisterOption
		if ws := src.Writers(); ws != nil {
			opts = append(opts, WithWriters(ws))
		}
		r := NewRegister(src.id, opts...)
		r.RestoreState(st)
		return r, nil
	case *MaxRegister:
		m := NewMaxRegister(src.id)
		m.RestoreState(st)
		return m, nil
	case *CASCell:
		c := NewCASCell(src.id)
		c.RestoreState(st)
		return c, nil
	case *FragStore:
		f := NewFragStore(src.id)
		f.RestoreState(st)
		return f, nil
	default:
		return nil, fmt.Errorf("baseobj: cannot clone object %d of type %T", o.ID(), o)
	}
}

// Register is a multi-writer/multi-reader atomic read/write register,
// optionally restricted to a bounded writer set.
type Register struct {
	id      types.ObjectID
	writers map[types.ClientID]struct{} // nil means unbounded (MWMR)

	mu     sync.Mutex
	val    types.TSValue
	data   types.Payload // payload bytes riding with val (payload mode)
	sealed bool
}

// RegisterOption configures a Register.
type RegisterOption func(*Register)

// WithWriters restricts the register to the given writer set, modelling the
// z-writer registers of Theorem 3. A nil or empty set leaves the register
// unbounded.
func WithWriters(writers []types.ClientID) RegisterOption {
	return func(r *Register) {
		if len(writers) == 0 {
			return
		}
		r.writers = make(map[types.ClientID]struct{}, len(writers))
		for _, w := range writers {
			r.writers[w] = struct{}{}
		}
	}
}

// NewRegister returns a register initialized to the zero TSValue.
func NewRegister(id types.ObjectID, opts ...RegisterOption) *Register {
	r := &Register{id: id, val: types.ZeroTSValue}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// ID implements Object.
func (r *Register) ID() types.ObjectID { return r.id }

// Kind implements Object.
func (r *Register) Kind() Kind { return KindRegister }

// WriterBound returns the size of the register's writer set, or 0 if the
// register is unbounded.
func (r *Register) WriterBound() int { return len(r.writers) }

// Writers returns the register's declared writer set in ascending order,
// or nil for an unbounded register. External-store lane backends use it to
// replicate z-writer placement, so remote registers enforce the same bound.
func (r *Register) Writers() []types.ClientID {
	if r.writers == nil {
		return nil
	}
	ws := make([]types.ClientID, 0, len(r.writers))
	for w := range r.writers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws
}

// Apply implements Object. Writes overwrite unconditionally (last write
// wins): this is precisely the weakness the lower bound exploits, because a
// delayed old write can erase a newer value.
func (r *Register) Apply(client types.ClientID, inv Invocation) (Response, error) {
	switch inv.Op {
	case OpRead:
		r.mu.Lock()
		v, d := r.val, r.data
		r.mu.Unlock()
		return Response{Op: OpRead, Val: v, Data: d}, nil
	case OpWrite:
		if r.writers != nil {
			if _, ok := r.writers[client]; !ok {
				return Response{}, fmt.Errorf("%w: client %d, register %d", ErrUnauthorizedWriter, client, r.id)
			}
		}
		r.mu.Lock()
		if r.sealed {
			r.mu.Unlock()
			return Response{}, fmt.Errorf("%w: register %d", ErrSealed, r.id)
		}
		r.val = inv.Arg
		r.data = inv.Data
		r.mu.Unlock()
		return Response{Op: OpWrite}, nil
	default:
		return Response{}, fmt.Errorf("%w: %v on register %d", ErrWrongOp, inv.Op, r.id)
	}
}

// LockState implements Locker.
func (r *Register) LockState() { r.mu.Lock() }

// UnlockState implements Locker.
func (r *Register) UnlockState() { r.mu.Unlock() }

// ApplyLocked implements Locker.
func (r *Register) ApplyLocked(client types.ClientID, inv Invocation) (Response, error) {
	switch inv.Op {
	case OpRead:
		return Response{Op: OpRead, Val: r.val, Data: r.data}, nil
	case OpWrite:
		if r.writers != nil {
			if _, ok := r.writers[client]; !ok {
				return Response{}, fmt.Errorf("%w: client %d, register %d", ErrUnauthorizedWriter, client, r.id)
			}
		}
		if r.sealed {
			return Response{}, fmt.Errorf("%w: register %d", ErrSealed, r.id)
		}
		r.val = inv.Arg
		r.data = inv.Data
		return Response{Op: OpWrite}, nil
	default:
		return Response{}, fmt.Errorf("%w: %v on register %d", ErrWrongOp, inv.Op, r.id)
	}
}

// Peek implements Object.
func (r *Register) Peek() types.TSValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.val
}

// Seal implements Sealer.
func (r *Register) Seal() types.TSValue {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealed = true
	return r.val
}

// Restore implements Sealer.
func (r *Register) Restore(v types.TSValue) {
	r.RestoreState(State{Val: v})
}

// SealState implements StateSealer.
func (r *Register) SealState() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealed = true
	return State{Val: r.val, Data: r.data}
}

// RestoreState implements StateSealer.
func (r *Register) RestoreState(st State) {
	r.mu.Lock()
	r.val = st.Val
	r.data = st.Data
	r.mu.Unlock()
}

// PeekState implements StatePeeker.
func (r *Register) PeekState() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return State{Val: r.val, Data: r.data}
}

// SizeBytes implements Sizer.
func (r *Register) SizeBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data)
}

// MaxRegister is a max-register [Aspnes, Attiya, Censor 2009]: write-max
// only takes effect when the written value exceeds the current one, so a
// delayed old write-max can never erase a newer value. This monotonicity is
// what separates max-registers from plain registers in Table 1.
type MaxRegister struct {
	id types.ObjectID

	mu     sync.Mutex
	val    types.TSValue
	data   types.Payload // payload of the current max (payload mode)
	sealed bool
}

// NewMaxRegister returns a max-register initialized to the zero TSValue.
func NewMaxRegister(id types.ObjectID) *MaxRegister {
	return &MaxRegister{id: id, val: types.ZeroTSValue}
}

// ID implements Object.
func (m *MaxRegister) ID() types.ObjectID { return m.id }

// Kind implements Object.
func (m *MaxRegister) Kind() Kind { return KindMaxRegister }

// Apply implements Object.
func (m *MaxRegister) Apply(_ types.ClientID, inv Invocation) (Response, error) {
	switch inv.Op {
	case OpReadMax:
		m.mu.Lock()
		v, d := m.val, m.data
		m.mu.Unlock()
		return Response{Op: OpReadMax, Val: v, Data: d}, nil
	case OpWriteMax:
		m.mu.Lock()
		if m.sealed {
			m.mu.Unlock()
			return Response{}, fmt.Errorf("%w: max-register %d", ErrSealed, m.id)
		}
		if m.val.Less(inv.Arg) {
			m.val = inv.Arg
			m.data = inv.Data
		}
		m.mu.Unlock()
		return Response{Op: OpWriteMax}, nil
	default:
		return Response{}, fmt.Errorf("%w: %v on max-register %d", ErrWrongOp, inv.Op, m.id)
	}
}

// LockState implements Locker.
func (m *MaxRegister) LockState() { m.mu.Lock() }

// UnlockState implements Locker.
func (m *MaxRegister) UnlockState() { m.mu.Unlock() }

// ApplyLocked implements Locker.
func (m *MaxRegister) ApplyLocked(_ types.ClientID, inv Invocation) (Response, error) {
	switch inv.Op {
	case OpReadMax:
		return Response{Op: OpReadMax, Val: m.val, Data: m.data}, nil
	case OpWriteMax:
		if m.sealed {
			return Response{}, fmt.Errorf("%w: max-register %d", ErrSealed, m.id)
		}
		if m.val.Less(inv.Arg) {
			m.val = inv.Arg
			m.data = inv.Data
		}
		return Response{Op: OpWriteMax}, nil
	default:
		return Response{}, fmt.Errorf("%w: %v on max-register %d", ErrWrongOp, inv.Op, m.id)
	}
}

// Peek implements Object.
func (m *MaxRegister) Peek() types.TSValue {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.val
}

// Seal implements Sealer.
func (m *MaxRegister) Seal() types.TSValue {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sealed = true
	return m.val
}

// Restore implements Sealer.
func (m *MaxRegister) Restore(v types.TSValue) {
	m.RestoreState(State{Val: v})
}

// SealState implements StateSealer.
func (m *MaxRegister) SealState() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sealed = true
	return State{Val: m.val, Data: m.data}
}

// RestoreState implements StateSealer.
func (m *MaxRegister) RestoreState(st State) {
	m.mu.Lock()
	m.val = st.Val
	m.data = st.Data
	m.mu.Unlock()
}

// PeekState implements StatePeeker.
func (m *MaxRegister) PeekState() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return State{Val: m.val, Data: m.data}
}

// SizeBytes implements Sizer.
func (m *MaxRegister) SizeBytes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

// CASCell is a compare-and-swap object. CAS(exp, new) sets the value to new
// when the current value equals exp, and always returns the previous value
// (the semantics of Algorithm 1 in Appendix B).
type CASCell struct {
	id types.ObjectID

	mu     sync.Mutex
	val    types.TSValue
	sealed bool
}

// NewCASCell returns a CAS cell initialized to the zero TSValue.
func NewCASCell(id types.ObjectID) *CASCell {
	return &CASCell{id: id, val: types.ZeroTSValue}
}

// ID implements Object.
func (c *CASCell) ID() types.ObjectID { return c.id }

// Kind implements Object.
func (c *CASCell) Kind() Kind { return KindCAS }

// Apply implements Object.
func (c *CASCell) Apply(_ types.ClientID, inv Invocation) (Response, error) {
	if inv.Op != OpCAS {
		return Response{}, fmt.Errorf("%w: %v on cas cell %d", ErrWrongOp, inv.Op, c.id)
	}
	c.mu.Lock()
	if c.sealed {
		c.mu.Unlock()
		return Response{}, fmt.Errorf("%w: cas cell %d", ErrSealed, c.id)
	}
	prev := c.val
	if c.val == inv.Exp {
		c.val = inv.New
	}
	c.mu.Unlock()
	return Response{Op: OpCAS, Val: prev}, nil
}

// LockState implements Locker.
func (c *CASCell) LockState() { c.mu.Lock() }

// UnlockState implements Locker.
func (c *CASCell) UnlockState() { c.mu.Unlock() }

// ApplyLocked implements Locker.
func (c *CASCell) ApplyLocked(_ types.ClientID, inv Invocation) (Response, error) {
	if inv.Op != OpCAS {
		return Response{}, fmt.Errorf("%w: %v on cas cell %d", ErrWrongOp, inv.Op, c.id)
	}
	if c.sealed {
		return Response{}, fmt.Errorf("%w: cas cell %d", ErrSealed, c.id)
	}
	prev := c.val
	if c.val == inv.Exp {
		c.val = inv.New
	}
	return Response{Op: OpCAS, Val: prev}, nil
}

// Peek implements Object.
func (c *CASCell) Peek() types.TSValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val
}

// Seal implements Sealer.
func (c *CASCell) Seal() types.TSValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealed = true
	return c.val
}

// Restore implements Sealer.
func (c *CASCell) Restore(v types.TSValue) {
	c.mu.Lock()
	c.val = v
	c.mu.Unlock()
}

// SealState implements StateSealer. CAS cells carry no payload — their
// comparability requirement (Apply compares TSValues with ==) keeps the
// stored state a bare TSValue.
func (c *CASCell) SealState() State { return State{Val: c.Seal()} }

// RestoreState implements StateSealer.
func (c *CASCell) RestoreState(st State) { c.Restore(st.Val) }
