package baseobj

import (
	"errors"
	"testing"

	"repro/internal/types"
)

func frag(ts uint64, w types.ClientID, v types.Value, idx int, data string) *Fragment {
	return &Fragment{
		TS:     types.TSValue{TS: ts, Writer: w, Val: v},
		Index:  idx,
		K:      2,
		Length: len(data) * 2,
		Data:   types.Payload(data),
	}
}

func mustApply(t *testing.T, s *FragStore, inv Invocation) Response {
	t.Helper()
	resp, err := s.Apply(1, inv)
	if err != nil {
		t.Fatalf("apply %v: %v", inv.Op, err)
	}
	return resp
}

func TestFragStoreLifecycle(t *testing.T) {
	s := NewFragStore(7)
	if s.Kind() != KindFragStore || s.ID() != 7 {
		t.Fatal("identity")
	}
	// Empty store: no fragments, zero max ts.
	resp := mustApply(t, s, Invocation{Op: OpGetFrags})
	if len(resp.Frags) != 0 || resp.Val != types.ZeroTSValue {
		t.Fatalf("empty store returned %+v", resp)
	}

	// Put two pending stripes; max ts reflects the newest.
	mustApply(t, s, Invocation{Op: OpPutFrag, Frag: frag(1, 1, 10, 0, "aa")})
	mustApply(t, s, Invocation{Op: OpPutFrag, Frag: frag(2, 1, 20, 0, "bb")})
	resp = mustApply(t, s, Invocation{Op: OpFragTS})
	if resp.Val.TS != 2 {
		t.Fatalf("max ts %v", resp.Val)
	}
	if got := mustApply(t, s, Invocation{Op: OpGetFrags}); len(got.Frags) != 2 {
		t.Fatalf("want 2 pending, got %d", len(got.Frags))
	}
	if s.SizeBytes() != 4 {
		t.Fatalf("size %d", s.SizeBytes())
	}

	// Commit ts=2: promotes it, GCs ts=1.
	mustApply(t, s, Invocation{Op: OpCommitFrag, Arg: types.TSValue{TS: 2, Writer: 1, Val: 20}})
	got := mustApply(t, s, Invocation{Op: OpGetFrags})
	if len(got.Frags) != 1 || !got.Frags[0].Committed || got.Frags[0].TS.TS != 2 {
		t.Fatalf("after commit: %+v", got.Frags)
	}
	// Stale put (ts=1) is acked but dropped.
	mustApply(t, s, Invocation{Op: OpPutFrag, Frag: frag(1, 2, 11, 0, "zz")})
	if got := mustApply(t, s, Invocation{Op: OpGetFrags}); len(got.Frags) != 1 {
		t.Fatalf("stale put stored: %+v", got.Frags)
	}
}

func TestFragStoreCommitBeforePut(t *testing.T) {
	// Commit can outrun the fragment (this server's put was delayed). The
	// straggler put at the watermark must land as the committed fragment.
	s := NewFragStore(1)
	ts := types.TSValue{TS: 5, Writer: 3, Val: 50}
	mustApply(t, s, Invocation{Op: OpCommitFrag, Arg: ts})
	if got := mustApply(t, s, Invocation{Op: OpGetFrags}); len(got.Frags) != 0 {
		t.Fatalf("commit materialized fragments: %+v", got.Frags)
	}
	mustApply(t, s, Invocation{Op: OpPutFrag, Frag: &Fragment{TS: ts, Index: 1, K: 2, Length: 4, Data: types.Payload("xy")}})
	got := mustApply(t, s, Invocation{Op: OpGetFrags})
	if len(got.Frags) != 1 || !got.Frags[0].Committed {
		t.Fatalf("straggler not committed: %+v", got.Frags)
	}
}

func TestFragStoreSealAndState(t *testing.T) {
	s := NewFragStore(2)
	mustApply(t, s, Invocation{Op: OpPutFrag, Frag: frag(1, 1, 10, 0, "aa")})
	mustApply(t, s, Invocation{Op: OpCommitFrag, Arg: types.TSValue{TS: 1, Writer: 1, Val: 10}})
	mustApply(t, s, Invocation{Op: OpPutFrag, Frag: frag(3, 2, 30, 0, "cc")})

	st := s.SealState()
	if _, err := s.Apply(1, Invocation{Op: OpPutFrag, Frag: frag(4, 1, 40, 0, "dd")}); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed store accepted put: %v", err)
	}
	if _, err := s.Apply(1, Invocation{Op: OpCommitFrag, Arg: types.TSValue{TS: 4}}); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed store accepted commit: %v", err)
	}
	// Reads still work on a sealed store.
	mustApply(t, s, Invocation{Op: OpGetFrags})

	clone, err := CloneAtState(s, st)
	if err != nil {
		t.Fatal(err)
	}
	cs := clone.(*FragStore)
	got := mustApply(t, cs, Invocation{Op: OpGetFrags})
	if len(got.Frags) != 2 {
		t.Fatalf("clone has %d fragments, want 2", len(got.Frags))
	}
	if cs.Peek() != (types.TSValue{TS: 1, Writer: 1, Val: 10}) {
		t.Fatalf("clone watermark %v", cs.Peek())
	}
	// The clone is unsealed: new puts land.
	mustApply(t, cs, Invocation{Op: OpPutFrag, Frag: frag(4, 1, 40, 0, "dd")})
}

func TestFragStoreWrongOp(t *testing.T) {
	s := NewFragStore(3)
	if _, err := s.Apply(1, Invocation{Op: OpRead}); !errors.Is(err, ErrWrongOp) {
		t.Fatalf("OpRead on frag store: %v", err)
	}
	r := NewRegister(4)
	if _, err := r.Apply(1, Invocation{Op: OpPutFrag, Frag: frag(1, 1, 1, 0, "a")}); !errors.Is(err, ErrWrongOp) {
		t.Fatalf("OpPutFrag on register: %v", err)
	}
}

func TestRegisterPayload(t *testing.T) {
	r := NewRegister(5)
	p := types.PayloadFor(42, 128)
	if _, err := r.Apply(1, Invocation{Op: OpWrite, Arg: types.TSValue{TS: 1, Writer: 1, Val: 42}, Data: p}); err != nil {
		t.Fatal(err)
	}
	resp, err := r.Apply(2, Invocation{Op: OpRead})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := resp.Data.Value(); err != nil || v != 42 {
		t.Fatalf("payload round trip: %v %v", v, err)
	}
	if r.SizeBytes() != 128 {
		t.Fatalf("size %d", r.SizeBytes())
	}
	// Payload survives state transfer.
	clone, err := CloneAtState(r, r.SealState())
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = clone.Apply(2, Invocation{Op: OpRead})
	if v, err := resp.Data.Value(); err != nil || v != 42 {
		t.Fatalf("clone payload: %v %v", v, err)
	}
}

func TestMaxRegisterPayload(t *testing.T) {
	m := NewMaxRegister(6)
	w := func(ts uint64, v types.Value) {
		if _, err := m.Apply(1, Invocation{
			Op:   OpWriteMax,
			Arg:  types.TSValue{TS: ts, Writer: 1, Val: v},
			Data: types.PayloadFor(v, 64),
		}); err != nil {
			t.Fatal(err)
		}
	}
	w(2, 20)
	w(1, 10) // loses the max: payload must NOT replace ts=2's
	resp, err := m.Apply(2, Invocation{Op: OpReadMax})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := resp.Data.Value(); err != nil || v != 20 {
		t.Fatalf("stale write-max replaced payload: %v %v", v, err)
	}
	if m.SizeBytes() != 64 {
		t.Fatalf("size %d", m.SizeBytes())
	}
}
