package baseobj

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestRegisterReadWrite(t *testing.T) {
	r := NewRegister(1)
	resp, err := r.Apply(0, Invocation{Op: OpRead})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.Val != types.ZeroTSValue {
		t.Fatalf("initial read = %v, want zero", resp.Val)
	}
	v := types.TSValue{TS: 3, Writer: 1, Val: 7}
	if _, err := r.Apply(1, Invocation{Op: OpWrite, Arg: v}); err != nil {
		t.Fatalf("write: %v", err)
	}
	resp, err = r.Apply(2, Invocation{Op: OpRead})
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if resp.Val != v {
		t.Fatalf("read = %v, want %v", resp.Val, v)
	}
}

func TestRegisterLastWriteWins(t *testing.T) {
	// Plain registers overwrite unconditionally — including with OLDER
	// timestamps. This is the weakness the lower bound exploits.
	r := NewRegister(1)
	newer := types.TSValue{TS: 5, Writer: 1, Val: 50}
	older := types.TSValue{TS: 2, Writer: 0, Val: 20}
	if _, err := r.Apply(1, Invocation{Op: OpWrite, Arg: newer}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(0, Invocation{Op: OpWrite, Arg: older}); err != nil {
		t.Fatal(err)
	}
	if got := r.Peek(); got != older {
		t.Fatalf("after stale overwrite Peek = %v, want %v", got, older)
	}
}

func TestRegisterWriterSetEnforcement(t *testing.T) {
	r := NewRegister(1, WithWriters([]types.ClientID{1, 2}))
	if r.WriterBound() != 2 {
		t.Fatalf("WriterBound = %d, want 2", r.WriterBound())
	}
	if _, err := r.Apply(1, Invocation{Op: OpWrite, Arg: types.TSValue{TS: 1}}); err != nil {
		t.Fatalf("authorized write: %v", err)
	}
	_, err := r.Apply(3, Invocation{Op: OpWrite, Arg: types.TSValue{TS: 2}})
	if !errors.Is(err, ErrUnauthorizedWriter) {
		t.Fatalf("unauthorized write err = %v, want ErrUnauthorizedWriter", err)
	}
	// Reads are never restricted.
	if _, err := r.Apply(3, Invocation{Op: OpRead}); err != nil {
		t.Fatalf("read by non-writer: %v", err)
	}
}

func TestRegisterEmptyWriterSetIsUnbounded(t *testing.T) {
	r := NewRegister(1, WithWriters(nil))
	if r.WriterBound() != 0 {
		t.Fatalf("WriterBound = %d, want 0 (unbounded)", r.WriterBound())
	}
	if _, err := r.Apply(99, Invocation{Op: OpWrite, Arg: types.TSValue{TS: 1}}); err != nil {
		t.Fatalf("write on unbounded register: %v", err)
	}
}

func TestRegisterRejectsWrongOps(t *testing.T) {
	r := NewRegister(1)
	for _, op := range []OpCode{OpReadMax, OpWriteMax, OpCAS} {
		if _, err := r.Apply(0, Invocation{Op: op}); !errors.Is(err, ErrWrongOp) {
			t.Errorf("register %v err = %v, want ErrWrongOp", op, err)
		}
	}
}

func TestMaxRegisterMonotone(t *testing.T) {
	m := NewMaxRegister(1)
	hi := types.TSValue{TS: 9, Writer: 1, Val: 90}
	lo := types.TSValue{TS: 4, Writer: 0, Val: 40}
	if _, err := m.Apply(1, Invocation{Op: OpWriteMax, Arg: hi}); err != nil {
		t.Fatal(err)
	}
	// A stale write-max has no effect — the separation from registers.
	if _, err := m.Apply(0, Invocation{Op: OpWriteMax, Arg: lo}); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Apply(2, Invocation{Op: OpReadMax})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Val != hi {
		t.Fatalf("read-max = %v, want %v", resp.Val, hi)
	}
}

func TestMaxRegisterHoldsMaxProperty(t *testing.T) {
	// Property: after any sequence of write-max ops, read-max returns the
	// maximum of the written values (or zero for the empty sequence).
	err := quick.Check(func(tss []uint8, writers []uint8) bool {
		m := NewMaxRegister(1)
		max := types.ZeroTSValue
		for i, ts := range tss {
			w := types.ClientID(0)
			if len(writers) > 0 {
				w = types.ClientID(writers[i%len(writers)] % 4)
			}
			v := types.TSValue{TS: uint64(ts % 16), Writer: w, Val: types.Value(i)}
			if _, err := m.Apply(w, Invocation{Op: OpWriteMax, Arg: v}); err != nil {
				return false
			}
			max = types.MaxTSValue(max, v)
		}
		resp, err := m.Apply(0, Invocation{Op: OpReadMax})
		return err == nil && resp.Val == max
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxRegisterRejectsWrongOps(t *testing.T) {
	m := NewMaxRegister(1)
	for _, op := range []OpCode{OpRead, OpWrite, OpCAS} {
		if _, err := m.Apply(0, Invocation{Op: op}); !errors.Is(err, ErrWrongOp) {
			t.Errorf("max-register %v err = %v, want ErrWrongOp", op, err)
		}
	}
}

func TestCASSemantics(t *testing.T) {
	c := NewCASCell(1)
	v1 := types.TSValue{TS: 1, Writer: 0, Val: 10}
	v2 := types.TSValue{TS: 2, Writer: 1, Val: 20}

	// Successful CAS from the initial value; returns the previous value.
	resp, err := c.Apply(0, Invocation{Op: OpCAS, Exp: types.ZeroTSValue, New: v1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Val != types.ZeroTSValue {
		t.Fatalf("cas returned %v, want zero", resp.Val)
	}
	if c.Peek() != v1 {
		t.Fatalf("after cas Peek = %v, want %v", c.Peek(), v1)
	}

	// Failed CAS leaves the value and still returns the previous value.
	resp, err = c.Apply(1, Invocation{Op: OpCAS, Exp: types.ZeroTSValue, New: v2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Val != v1 {
		t.Fatalf("failed cas returned %v, want %v", resp.Val, v1)
	}
	if c.Peek() != v1 {
		t.Fatalf("failed cas changed value to %v", c.Peek())
	}

	// The no-op CAS(x, x) is a read.
	resp, err = c.Apply(2, Invocation{Op: OpCAS, Exp: types.ZeroTSValue, New: types.ZeroTSValue})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Val != v1 || c.Peek() != v1 {
		t.Fatalf("no-op cas: returned %v, state %v, want %v", resp.Val, c.Peek(), v1)
	}
}

func TestCASRejectsWrongOps(t *testing.T) {
	c := NewCASCell(1)
	for _, op := range []OpCode{OpRead, OpWrite, OpReadMax, OpWriteMax} {
		if _, err := c.Apply(0, Invocation{Op: op}); !errors.Is(err, ErrWrongOp) {
			t.Errorf("cas %v err = %v, want ErrWrongOp", op, err)
		}
	}
}

func TestObjectIdentity(t *testing.T) {
	objs := []Object{NewRegister(7), NewMaxRegister(8), NewCASCell(9)}
	wantKinds := []Kind{KindRegister, KindMaxRegister, KindCAS}
	wantIDs := []types.ObjectID{7, 8, 9}
	for i, o := range objs {
		if o.ID() != wantIDs[i] {
			t.Errorf("ID = %d, want %d", o.ID(), wantIDs[i])
		}
		if o.Kind() != wantKinds[i] {
			t.Errorf("Kind = %v, want %v", o.Kind(), wantKinds[i])
		}
	}
}

func TestOpCodeIsWrite(t *testing.T) {
	writes := map[OpCode]bool{
		OpRead: false, OpWrite: true, OpReadMax: false, OpWriteMax: true, OpCAS: true,
	}
	for op, want := range writes {
		if got := op.IsWrite(); got != want {
			t.Errorf("%v.IsWrite() = %v, want %v", op, got, want)
		}
	}
}

func TestStringerCoverage(t *testing.T) {
	for _, k := range []Kind{KindRegister, KindMaxRegister, KindCAS, Kind(99)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", int(k))
		}
	}
	for _, c := range []OpCode{OpRead, OpWrite, OpReadMax, OpWriteMax, OpCAS, OpCode(99)} {
		if c.String() == "" {
			t.Errorf("OpCode(%d).String() empty", int(c))
		}
	}
}

func TestConcurrentApplies(t *testing.T) {
	// Apply is the linearization point; hammer each object from many
	// goroutines and verify a coherent final state (run with -race).
	reg := NewRegister(1)
	max := NewMaxRegister(2)
	cas := NewCASCell(3)
	var wg sync.WaitGroup
	const goroutines, opsEach = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsEach; i++ {
				v := types.TSValue{TS: uint64(rng.Intn(100)), Writer: types.ClientID(g), Val: types.Value(i)}
				if _, err := reg.Apply(types.ClientID(g), Invocation{Op: OpWrite, Arg: v}); err != nil {
					t.Errorf("register write: %v", err)
					return
				}
				if _, err := max.Apply(types.ClientID(g), Invocation{Op: OpWriteMax, Arg: v}); err != nil {
					t.Errorf("write-max: %v", err)
					return
				}
				prev, err := cas.Apply(types.ClientID(g), Invocation{Op: OpCAS, Exp: types.ZeroTSValue, New: types.ZeroTSValue})
				if err != nil {
					t.Errorf("cas read: %v", err)
					return
				}
				if _, err := cas.Apply(types.ClientID(g), Invocation{Op: OpCAS, Exp: prev.Val, New: v}); err != nil {
					t.Errorf("cas: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Max-register must hold a value with the highest timestamp written.
	if got := max.Peek(); got.TS > 99 {
		t.Fatalf("max-register holds impossible timestamp %v", got)
	}
}
