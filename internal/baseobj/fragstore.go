package baseobj

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// FragStore is the per-server base object of the erasure-coded register
// construction (package coded). It stores at most one *committed*
// fragment — the store's piece of the newest stripe known to be complete
// at a quorum — plus the pending fragments of newer stripes whose writes
// are still in flight.
//
// The retention rule is what makes partially-written stripes safe: a
// pending fragment is only discarded when a commit with a higher
// timestamp arrives, and a commit is only issued after the stripe
// reached n−f servers. So any fragment this store acked remains
// available until it is provably superseded, and a reader gathering n−f
// stores always finds ≥ k = n−2f fragments of the newest committed
// stripe — a torn (partially overwritten) stripe can never hide it.
type FragStore struct {
	id types.ObjectID

	mu sync.Mutex
	// watermark is the highest commit timestamp seen; pending stripes at
	// or below it are garbage-collected.
	watermark types.TSValue
	// committed is this store's fragment of the newest committed stripe
	// it actually holds (nil when the commit outran the fragment).
	committed *Fragment
	// pending holds fragments of stripes newer than the watermark,
	// keyed by their write timestamp.
	pending map[fragKey]*Fragment
	sealed  bool
}

// fragKey identifies a stripe: the (counter, writer) pair is unique per
// write.
type fragKey struct {
	ts     uint64
	writer types.ClientID
}

func keyOf(v types.TSValue) fragKey { return fragKey{ts: v.TS, writer: v.Writer} }

// NewFragStore returns an empty fragment store.
func NewFragStore(id types.ObjectID) *FragStore {
	return &FragStore{id: id, pending: make(map[fragKey]*Fragment)}
}

// ID implements Object.
func (s *FragStore) ID() types.ObjectID { return s.id }

// Kind implements Object.
func (s *FragStore) Kind() Kind { return KindFragStore }

// Apply implements Object.
func (s *FragStore) Apply(client types.ClientID, inv Invocation) (Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(client, inv)
}

// LockState implements Locker.
func (s *FragStore) LockState() { s.mu.Lock() }

// UnlockState implements Locker.
func (s *FragStore) UnlockState() { s.mu.Unlock() }

// ApplyLocked implements Locker.
func (s *FragStore) ApplyLocked(client types.ClientID, inv Invocation) (Response, error) {
	return s.apply(client, inv)
}

func (s *FragStore) apply(_ types.ClientID, inv Invocation) (Response, error) {
	switch inv.Op {
	case OpPutFrag:
		if inv.Frag == nil {
			return Response{}, fmt.Errorf("baseobj: put-frag without fragment on store %d", s.id)
		}
		if s.sealed {
			return Response{}, fmt.Errorf("%w: frag store %d", ErrSealed, s.id)
		}
		s.putFrag(inv.Frag)
		return Response{Op: OpPutFrag}, nil
	case OpCommitFrag:
		if s.sealed {
			return Response{}, fmt.Errorf("%w: frag store %d", ErrSealed, s.id)
		}
		s.commit(inv.Arg)
		return Response{Op: OpCommitFrag}, nil
	case OpGetFrags:
		// Val is the commit watermark (not the max pending ts): paired
		// with the fragment snapshot it is the store's complete state,
		// which is what wire-read state transfer relies on.
		return Response{Op: OpGetFrags, Val: s.watermark, Frags: s.snapshot()}, nil
	case OpFragTS:
		return Response{Op: OpFragTS, Val: s.maxTS()}, nil
	default:
		return Response{}, fmt.Errorf("%w: %v on frag store %d", ErrWrongOp, inv.Op, s.id)
	}
}

// putFrag stores a fragment. Fragments of stripes at the watermark
// become the committed fragment (the straggler of an already-committed
// write); older ones are stale and acked without effect.
func (s *FragStore) putFrag(f *Fragment) {
	switch {
	case f.TS == s.watermark && s.watermark != types.ZeroTSValue:
		fc := *f
		fc.Committed = true
		s.committed = &fc
	case s.watermark.Less(f.TS):
		s.pending[keyOf(f.TS)] = f
	}
}

// commit advances the watermark to ts, promotes the matching pending
// fragment if present, and garbage-collects everything superseded.
func (s *FragStore) commit(ts types.TSValue) {
	if !s.watermark.Less(ts) {
		return
	}
	s.watermark = ts
	if f, ok := s.pending[keyOf(ts)]; ok {
		fc := *f
		fc.Committed = true
		s.committed = &fc
	}
	for k, f := range s.pending {
		if !ts.Less(f.TS) {
			delete(s.pending, k)
		}
	}
}

// snapshot copies out the committed fragment (first) and all pending
// fragments. The Data slices are shared — callers must not mutate them.
func (s *FragStore) snapshot() []Fragment {
	out := make([]Fragment, 0, len(s.pending)+1)
	if s.committed != nil {
		out = append(out, *s.committed)
	}
	for _, f := range s.pending {
		out = append(out, *f)
	}
	return out
}

// maxTS returns the highest stripe timestamp known to this store.
func (s *FragStore) maxTS() types.TSValue {
	m := s.watermark
	if s.committed != nil {
		m = types.MaxTSValue(m, s.committed.TS)
	}
	for _, f := range s.pending {
		m = types.MaxTSValue(m, f.TS)
	}
	return m
}

// Peek implements Object; it returns the commit watermark.
func (s *FragStore) Peek() types.TSValue {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watermark
}

// Seal implements Sealer (watermark only — reconfiguration uses
// SealState).
func (s *FragStore) Seal() types.TSValue {
	return s.SealState().Val
}

// Restore implements Sealer.
func (s *FragStore) Restore(v types.TSValue) {
	s.RestoreState(State{Val: v})
}

// SealState implements StateSealer.
func (s *FragStore) SealState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealed = true
	return State{Val: s.watermark, Frags: s.snapshot()}
}

// RestoreState implements StateSealer.
func (s *FragStore) RestoreState(st State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watermark = st.Val
	s.committed = nil
	s.pending = make(map[fragKey]*Fragment)
	for i := range st.Frags {
		f := st.Frags[i]
		if f.Committed {
			fc := f
			s.committed = &fc
			continue
		}
		fp := f
		s.putFrag(&fp)
	}
}

// PeekState implements StatePeeker.
func (s *FragStore) PeekState() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return State{Val: s.watermark, Frags: s.snapshot()}
}

// SizeBytes implements Sizer: the payload bytes currently stored — the
// quantity the space bounds are about.
func (s *FragStore) SizeBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	if s.committed != nil {
		n += len(s.committed.Data)
	}
	for _, f := range s.pending {
		n += len(f.Data)
	}
	return n
}
