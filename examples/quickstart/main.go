// Quickstart: build the paper's main construction (Algorithm 2) on a small
// fault-prone cluster, write from several writers, read it back, and print
// the space accounting next to the Table 1 formulas.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/bounds"
	"repro/internal/cluster"
	"repro/internal/emulation/regemu"
	"repro/internal/fabric"
	"repro/internal/types"
)

func main() {
	const (
		k = 3 // writers
		f = 1 // tolerated server crashes
		n = 4 // servers
	)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A cluster of n fault-prone servers and the asynchronous fabric
	// connecting clients to the base objects stored on them.
	c, err := cluster.New(n)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	fab := fabric.New(c)

	// The emulated f-tolerant k-register from plain read/write registers.
	reg, err := regemu.New(fab, k, f, regemu.Options{})
	if err != nil {
		log.Fatalf("regemu: %v", err)
	}

	// Each of the k writers writes once.
	for i := 0; i < k; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			log.Fatalf("writer %d: %v", i, err)
		}
		v := types.Value(1000 + i)
		if err := w.Write(ctx, v); err != nil {
			log.Fatalf("write %d: %v", i, err)
		}
		fmt.Printf("writer %d wrote %d\n", i, v)
	}

	// Any number of readers may read; none of them ever writes.
	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("reader saw %d\n", got)

	// Space accounting: the construction uses exactly the Theorem 3 count.
	upper, err := bounds.RegisterUpper(k, f, n)
	if err != nil {
		log.Fatalf("bounds: %v", err)
	}
	lower, err := bounds.RegisterLower(k, f, n)
	if err != nil {
		log.Fatalf("bounds: %v", err)
	}
	fmt.Printf("base registers used: %d (paper bounds: lower %d, upper %d)\n",
		reg.ResourceComplexity(), lower, upper)
	fmt.Printf("per-server register counts: %v\n", c.PerServerCounts())
}
