// Reconfig: live rolling replacement of a shard's entire server set while
// the store keeps serving traffic — the dynamic-membership counterpart of
// the cloudstore example's crash run.
//
// A two-shard store (internal/shardstore) serves seeded random traffic
// over a set of hot keys. A third of the way in, shard 0's three servers
// are replaced one by one: for each, a fresh server joins the view, the
// departing server freezes and drains, every base object it hosts moves —
// state included — onto the joiner, and the old server leaves. Clients
// never stop: an operation caught in a freeze window completes with a
// retryable view-change error (guaranteed never applied, so the retry is
// exactly-once safe) and re-executes transparently in the new view. Zero
// failed operations is the bar, not a statistic.
//
// The run ends the way every example here ends — checking history, not
// vibes: every touched key's recorded operations must be read-valid and
// sampled-linearizable (shardstore.CheckAll), despite the entire shard
// having been bodily moved mid-run.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/runner"
	"repro/internal/shardstore"
	"repro/internal/types"
)

func main() {
	const (
		shards   = 2
		keySpace = 1 << 16
		hotKeys  = 64
		opsTotal = hotKeys * 40
		window   = 48 // bounded in-flight operation window
		seed     = 2017
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	st, err := shardstore.Open(ctx, shardstore.Config{
		Shards: shards, Engines: shards, Keys: keySpace,
		Kind: runner.KindABDMax, Atomic: true, F: 1, N: 3,
		Seed: seed,
	})
	if err != nil {
		log.Fatalf("shardstore: %v", err)
	}
	defer st.Close()
	before := st.Env(0).Cluster.View()
	fmt.Printf("store open: %d shards, shard 0 view epoch %d members %v\n",
		st.NumShards(), before.Epoch, before.Members)

	rng := rand.New(rand.NewSource(seed))
	keys := st.BalancedKeys(hotKeys)
	vals := make(map[uint64]int64, hotKeys)
	sem := make(chan struct{}, window)
	fail := make(chan error, 1)
	reconfDone := make(chan error, 1)
	reconfAt := opsTotal / 3
	reconfStarted := false
	for i := 0; i < opsTotal; i++ {
		select {
		case err := <-fail:
			log.Fatalf("operation failed: %v", err)
		default:
		}
		if !reconfStarted && i >= reconfAt {
			reconfStarted = true
			fmt.Printf("rolling replacement of shard 0 begins (%d ops in flight)\n", len(sem))
			go func() { reconfDone <- st.Reconfigure(ctx, 0) }()
		}
		key := keys[rng.Intn(len(keys))]
		sem <- struct{}{}
		if rng.Intn(2) == 0 {
			vals[key]++
			st.StartWrite(key, 0, types.Value(vals[key]), func(err error) {
				if err != nil {
					select {
					case fail <- err:
					default:
					}
				}
				<-sem
			})
		} else {
			st.StartRead(key, 0, func(_ types.Value, err error) {
				if err != nil {
					select {
					case fail <- err:
					default:
					}
				}
				<-sem
			})
		}
	}
	if err := <-reconfDone; err != nil {
		log.Fatalf("reconfigure: %v", err)
	}
	if err := st.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	select {
	case err := <-fail:
		log.Fatalf("operation failed: %v", err)
	default:
	}

	after := st.Env(0).Cluster.View()
	fmt.Printf("shard 0 reconfigured: epoch %d -> %d, members %v -> %v, crashes %d (a leave is not a crash)\n",
		before.Epoch, after.Epoch, before.Members, after.Members, st.Env(0).Cluster.Crashes())
	for _, m := range after.Members {
		for _, old := range before.Members {
			if m == old {
				log.Fatalf("server %d survived the rolling replacement", m)
			}
		}
	}

	// The gate: every touched key's history must be clean despite the
	// entire shard having moved under live load.
	rep := st.CheckAll(2, seed)
	for _, v := range rep.Violations {
		log.Printf("VIOLATION: %s", v)
	}
	if len(rep.Violations) > 0 {
		log.Fatalf("%d consistency violations", len(rep.Violations))
	}
	fmt.Printf("checked %d keys: %d history ops valid, %d sampled ops linearizable, 0 violations\n",
		rep.Keys, rep.HistoryOps, rep.SampledOps)
	fmt.Println("zero failed operations, zero violations: reconfiguration was invisible to clients")
}
