// Codedstore: the space side of the paper over a real wire. Five storage
// nodes serve fragment stores over TCP; a coded register (n=5, f=1,
// kData=3) stripes each 64 KiB value into five timestamped fragments, one
// per node, where the replicated constructions would put a full copy on
// every server. Mid-run one node is killed — its connections drop, the
// lane crashes (reconnect-as-crash), and an in-flight write still
// completes on the surviving 4/5 quorum because any 3 fragments
// reconstruct. The run ends by reading the value back through the torn
// membership and printing what each node actually stores: ~a third of the
// value, against the full copy replication would have cost.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/emulation"
	"repro/internal/emulation/coded"
	"repro/internal/fabric"
	"repro/internal/lanenet"
	"repro/internal/runner"
)

const (
	servers   = 5
	faults    = 1
	valueSize = 64 << 10 // 64 KiB per written value
)

// storageNode is one in-process lanenet node with its listener: the same
// protocol and state machine as a cmd/lanenode process, minus the fork.
type storageNode struct {
	node *lanenet.Node
	lis  net.Listener
}

// kill drops the node the hard way a failure would: the listener stops
// accepting and every serving connection closes. Peers see the drop and
// crash the lane — the node never comes back.
func (s *storageNode) kill() {
	_ = s.lis.Close()
	s.node.Drain()
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Five storage nodes on real TCP listeners.
	nodes := make([]*storageNode, servers)
	addrs := make([]string, servers)
	for i := range nodes {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("listen: %v", err)
		}
		n := lanenet.NewNode()
		go func() { _ = n.Serve(lis) }()
		nodes[i] = &storageNode{node: n, lis: lis}
		addrs[i] = lis.Addr().String()
	}
	fmt.Printf("%d storage nodes up; striping %d KiB values %d-of-%d (f=%d)\n",
		servers, valueSize>>10, servers-2*faults, servers, faults)

	// One fabric over the node pool, one coded register on top.
	maker, clients, err := lanenet.Lanes(addrs, 5*time.Second)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	env, err := runner.NewEnv(servers, nil, fabric.WithLanes(maker))
	if err != nil {
		log.Fatalf("env: %v", err)
	}
	defer env.Fabric.Close()
	reg, err := coded.New(env.Fabric, 1, faults, coded.Options{ValueSize: valueSize})
	if err != nil {
		log.Fatalf("coded: %v", err)
	}

	w, err := reg.Writer(0)
	if err != nil {
		log.Fatalf("writer: %v", err)
	}
	rd := reg.NewReader()
	if err := w.Write(ctx, 1); err != nil {
		log.Fatalf("first write: %v", err)
	}
	fmt.Println("wrote value 1: one fragment per node, commit at 4/5")

	// Kill one node while the next write's fragments are in flight. The
	// write needs n-f=4 fragment acks and any reader needs kData=3
	// fragments, so losing a node mid-stripe costs nothing but its share.
	done := make(chan error, 1)
	w.(emulation.AsyncWriter).StartWrite(2, func(err error) { done <- err })
	nodes[4].kill()
	fmt.Println("killed node 4 mid-write (connections dropped, lane crashed)")
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("write during kill: %v", err)
		}
	case <-ctx.Done():
		log.Fatalf("write during kill never completed: %v", ctx.Err())
	}
	fmt.Println("wrote value 2 on the surviving 4/5 quorum")

	v, err := rd.Read(ctx)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	if v != 2 {
		log.Fatalf("read %d, want 2", v)
	}
	fmt.Println("read back value 2: reconstructed from 3 of the surviving fragments")

	// The space axis, from the nodes' own counters: each live node holds
	// one ceil(size/kData) fragment of the latest stripe where replication
	// would hold the full value.
	var total int64
	for i, s := range nodes {
		b := s.node.BytesStored()
		total += b
		status := "alive"
		if i == 4 {
			status = "killed"
		}
		fmt.Printf("node %d (%s): %6d bytes stored (full copy would be %d)\n",
			i, status, b, valueSize)
	}
	replicated := int64(servers * valueSize)
	fmt.Printf("cluster total: %d bytes vs %d replicated — %.1fx less for the same f=%d\n",
		total, replicated, float64(replicated)/float64(total), faults)
}
