// Cloudstore: the paper's motivating scenario at store scale — a reliable
// multi-register store built from fault-prone cloud storage nodes. A
// million-key object-metadata space is partitioned across four shards
// (internal/shardstore), each shard a complete emulation of its own: its
// servers expose only max-register-style primitives, writes and reads run
// the paper's quorum rounds, and the per-register space stays at the 2f+1
// optimum of Table 1. Registers materialize lazily, so "serving a million
// keys" costs base objects only for keys that see traffic.
//
// Mid-run, one storage server of *every* shard crashes while operations
// are in flight. Nobody reconfigures anything: each shard's quorums keep
// completing with its surviving servers, and the run ends by checking
// every touched key's history — read validity and sampled linearizability
// — demanding zero violations.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/fabric"
	"repro/internal/runner"
	"repro/internal/shardstore"
	"repro/internal/types"
)

func main() {
	const (
		shards   = 4       // independent fabrics (fault domains)
		engines  = 2       // shared async engine loops
		keySpace = 1 << 20 // addressable keys: every one routable, none pre-allocated
		hotKeys  = 200     // keys this run actually touches
		opsPerOp = 30      // writes+reads issued per hot key
		window   = 64      // bounded in-flight operation window
		seed     = 2017
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	profile := fabric.LatencyProfile{
		Base: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		SpikeProb: 0.01, Spike: 2 * time.Millisecond,
	}
	st, err := shardstore.Open(ctx, shardstore.Config{
		Shards: shards, Engines: engines, Keys: keySpace,
		Kind: runner.KindABDMax, Atomic: true, F: 1,
		Lane: runner.LaneLatency, Profile: &profile,
		Seed: seed,
	})
	if err != nil {
		log.Fatalf("shardstore: %v", err)
	}
	defer st.Close()
	fmt.Printf("store open: %d keys addressable across %d shards, %d engine loops\n",
		keySpace, st.NumShards(), st.NumEngines())

	// Seeded random traffic over the hot keys through the routing
	// frontend, never more than `window` operations in flight. Each key's
	// single writer client serializes its queued writes on the key's
	// engine loop, so values written per key stay monotone.
	rng := rand.New(rand.NewSource(seed))
	keys := st.BalancedKeys(hotKeys)
	vals := make(map[uint64]int64, hotKeys)
	sem := make(chan struct{}, window)
	fail := make(chan error, 1)
	totalOps := hotKeys * opsPerOp
	crashAt := totalOps / 3 // one crash per shard, a third of the way in
	crashed := false
	for i := 0; i < totalOps; i++ {
		select {
		case err := <-fail:
			log.Fatalf("operation failed: %v", err)
		default:
		}
		if !crashed && i >= crashAt {
			crashed = true
			for s := 0; s < st.NumShards(); s++ {
				if err := st.Crash(s, types.ServerID(rng.Intn(2))); err != nil {
					log.Fatalf("crash shard %d: %v", s, err)
				}
			}
			fmt.Printf("crashed one storage server in each of the %d shards (%d ops in flight)\n",
				shards, len(sem))
		}
		key := keys[rng.Intn(len(keys))]
		sem <- struct{}{}
		if rng.Intn(2) == 0 {
			vals[key]++
			st.StartWrite(key, 0, types.Value(vals[key]), func(err error) {
				if err != nil {
					select {
					case fail <- err:
					default:
					}
				}
				<-sem
			})
		} else {
			st.StartRead(key, 0, func(_ types.Value, err error) {
				if err != nil {
					select {
					case fail <- err:
					default:
					}
				}
				<-sem
			})
		}
	}
	if err := st.Drain(ctx); err != nil {
		log.Fatalf("drain: %v", err)
	}
	select {
	case err := <-fail:
		log.Fatalf("operation failed: %v", err)
	default:
	}

	// Every touched key's history must be clean despite the crashes.
	rep := st.CheckAll(2, seed)
	for _, v := range rep.Violations {
		log.Printf("VIOLATION: %s", v)
	}
	if len(rep.Violations) > 0 {
		log.Fatalf("%d consistency violations", len(rep.Violations))
	}
	fmt.Printf("checked %d keys: %d history ops valid, %d sampled ops linearizable, 0 violations\n",
		rep.Keys, rep.HistoryOps, rep.SampledOps)

	// Space: lazily materialized — base objects exist only for hot keys,
	// at the per-register 2f+1 optimum, and only on that key's shard.
	perShard := st.MaterializedKeys()
	for s, count := range perShard {
		env := st.Env(s)
		fmt.Printf("shard %d: %d keys materialized, %d base objects, %d crash observed\n",
			s, count, env.Cluster.ResourceComplexity(), env.Cluster.Crashes())
	}
	fmt.Printf("key-space served: %d addressable, %d touched, %d registers allocated\n",
		keySpace, len(keys), rep.Keys)
}
