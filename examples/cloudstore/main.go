// Cloudstore: the paper's motivating scenario — a reliable shared object
// built from fault-prone cloud storage nodes. A small "deployment registry"
// (which service version is live) is emulated over n key-value nodes that
// expose only max-register-style primitives; f of them crash mid-run and
// clients keep operating without noticing.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/emulation/abdmax"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

func main() {
	const (
		k = 2 // two deployment controllers may publish versions
		f = 2 // tolerate two node crashes
		n = 5 // five storage nodes (2f+1)
	)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	c, err := cluster.New(n)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	fab := fabric.New(c)
	hist := &spec.History{}

	// One max-register per storage node: the 2f+1 space optimum of
	// Table 1, independent of how many controllers and dashboards exist.
	reg, err := abdmax.New(fab, k, f, abdmax.Options{History: hist})
	if err != nil {
		log.Fatalf("abdmax: %v", err)
	}

	controllerA, err := reg.Writer(0)
	if err != nil {
		log.Fatalf("writer: %v", err)
	}
	controllerB, err := reg.Writer(1)
	if err != nil {
		log.Fatalf("writer: %v", err)
	}
	dashboard := reg.NewReader()

	publish := func(name string, w interface {
		Write(context.Context, types.Value) error
	}, version types.Value) {
		if err := w.Write(ctx, version); err != nil {
			log.Fatalf("%s publish %d: %v", name, version, err)
		}
		fmt.Printf("%s published version %d\n", name, version)
	}
	check := func(want types.Value) {
		got, err := dashboard.Read(ctx)
		if err != nil {
			log.Fatalf("dashboard read: %v", err)
		}
		fmt.Printf("dashboard sees version %d\n", got)
		if got != want {
			log.Fatalf("dashboard saw %d, want %d", got, want)
		}
	}

	publish("controller A", controllerA, 101)
	check(101)

	// Two storage nodes die. Nobody reconfigures anything.
	for _, s := range []types.ServerID{0, 3} {
		if err := fab.Crash(s); err != nil {
			log.Fatalf("crash %d: %v", s, err)
		}
		fmt.Printf("storage node %d crashed\n", s)
	}

	publish("controller B", controllerB, 102)
	check(102)
	publish("controller A", controllerA, 103)
	check(103)

	// The recorded history is write-sequential; verify the paper's
	// safety conditions held throughout the crashes.
	ops := hist.Snapshot()
	if err := spec.CheckWSSafety(ops, types.InitialValue); err != nil {
		log.Fatalf("WS-Safety: %v", err)
	}
	if err := spec.CheckWSRegularity(ops, types.InitialValue); err != nil {
		log.Fatalf("WS-Regularity: %v", err)
	}
	fmt.Printf("history of %d ops is WS-Safe and WS-Regular despite %d crashes\n",
		len(ops), c.Crashes())
	fmt.Printf("space used: %d base objects on %d nodes (optimum 2f+1 = %d)\n",
		c.ResourceComplexity(), n, 2*f+1)
}
