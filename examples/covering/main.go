// Covering: watch the lower-bound adversary of Lemma 1 at work. The
// environment blocks up to f low-level writes per high-level write (off a
// protected server set F), so every completed write leaves f registers
// covered forever — forcing Algorithm 2's space to grow with the number of
// writers, exactly the mechanism behind Theorem 1. The same adversary then
// releases a covering write against the under-provisioned baseline and
// breaks it.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/runner"
)

func main() {
	const (
		k = 5
		f = 2
		n = 6 // the paper's Figure 1/2 parameters
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Part 1: covering growth against Algorithm 2 (Figure 2).
	rep, err := runner.RunCovering(ctx, runner.KindRegEmu, k, f, n)
	if err != nil {
		log.Fatalf("covering: %v", err)
	}
	fmt.Printf("covering adversary vs Algorithm 2 (k=%d f=%d n=%d):\n", k, f, n)
	for i, wc := range rep.PerWrite {
		fmt.Printf("  write %d by c%d: +%d covered registers (total %d)\n",
			i+1, wc.Writer, wc.NewlyCovered, wc.Cumulative)
	}
	fmt.Printf("  total covered: %d (Lemma 1 says >= k*f = %d), on protected F: %d\n",
		rep.TotalCovered, rep.CoveringLowerBound, rep.CoveredOnF)
	fmt.Printf("  emulation stayed WS-Safe: %v, final read %d == last write %d\n\n",
		rep.Checks.WSSafety == nil, rep.FinalRead, rep.LastWritten)

	// Part 2: the same environment power breaks a register emulation
	// below the bound (the Table 1 separation).
	sep, err := runner.RunSeparation(ctx, f)
	if err != nil {
		log.Fatalf("separation: %v", err)
	}
	fmt.Println("stale-release attack (release a covering write after a newer write):")
	for _, r := range sep.Reports {
		status := "survived"
		if r.Violated() {
			status = fmt.Sprintf("VIOLATED WS-Safety (read stale %d instead of %d)", r.ReadValue, r.WantValue)
		}
		fmt.Printf("  %-8s: %s\n", r.Kind, status)
	}
	fmt.Println("\nonly the under-provisioned plain-register baseline fails: that is the")
	fmt.Println("register vs max-register/CAS separation of Table 1.")
}
