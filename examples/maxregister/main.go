// Maxregister: Algorithm 1 from Appendix B — a wait-free atomic
// max-register emulated from a single CAS object — and the time-complexity
// tradeoff the paper's discussion highlights: space drops to one object,
// but contended write-max calls retry.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/emulation/casmax"
	"repro/internal/fabric"
	"repro/internal/spec"
	"repro/internal/types"
)

func main() {
	const (
		k = 8
		f = 1
		n = 3
	)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	c, err := cluster.New(n)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	// The yield gate models response latency, widening the interleaving
	// windows so contention actually manifests.
	fab := fabric.New(c, fabric.WithGate(&fabric.YieldGate{Yields: 2}))
	hist := &spec.History{}

	// 2f+1 CAS cells, each hosting one Algorithm 1 max-register.
	reg, metrics, err := casmax.New(fab, k, f, casmax.Options{History: hist})
	if err != nil {
		log.Fatalf("casmax: %v", err)
	}
	fmt.Printf("emulating a %d-writer register from %d CAS objects (2f+1 = %d)\n",
		k, reg.ResourceComplexity(), 2*f+1)

	// Sequential phase: no contention, so write-max needs one CAS
	// attempt per store.
	for i := 0; i < k; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			log.Fatalf("writer %d: %v", i, err)
		}
		if err := w.Write(ctx, types.Value(10+i)); err != nil {
			log.Fatalf("write: %v", err)
		}
	}
	fmt.Printf("sequential: %d write-max calls, %d CAS attempts, %d retries\n",
		metrics.WriteMaxCalls.Load(), metrics.CASAttempts.Load(), metrics.Retries())

	// Concurrent phase: k writers race; colliding CAS attempts force the
	// Algorithm 1 loop to re-read and retry — the time cost of the
	// single-object space optimum.
	before := metrics.Retries()
	done := make(chan error, k)
	for i := 0; i < k; i++ {
		w, err := reg.Writer(i)
		if err != nil {
			log.Fatalf("writer %d: %v", i, err)
		}
		go func(i int, w interface {
			Write(context.Context, types.Value) error
		}) {
			var err error
			for round := 0; round < 500 && err == nil; round++ {
				err = w.Write(ctx, types.Value(1000+round*10+i))
			}
			done <- err
		}(i, w)
	}
	for i := 0; i < k; i++ {
		if err := <-done; err != nil {
			log.Fatalf("concurrent write: %v", err)
		}
	}
	fmt.Printf("concurrent: %d additional retries under contention\n", metrics.Retries()-before)

	got, err := reg.NewReader().Read(ctx)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("final read: %d\n", got)

	// The concurrent history is not write-sequential, but every read
	// must still return a written value.
	if err := spec.CheckReadValidity(hist.Snapshot(), types.InitialValue); err != nil {
		log.Fatalf("read validity: %v", err)
	}
	fmt.Println("read validity holds across the concurrent run")
}
