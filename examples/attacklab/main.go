// Attacklab: adversarial schedules as data. The same stale-release attack
// (Lemma 4) is expressed once as a JSON scenario and replayed against three
// constructions — only the base-object type changes, and only the plain
// register baseline breaks. Edit the schedule below and re-run to explore
// the environment's power yourself.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/scenario"
)

// attackTemplate is the Lemma 4 schedule with the construction and the
// expected outcome left as placeholders.
const attackTemplate = `{
  "name": "stale-release-%KIND%",
  "kind": "%KIND%", "k": 2, "f": 1, "n": 3,
  "expect_safety_violation": %VIOLATED%,
  "steps": [
    {"hold":    {"client": 0, "server": 0, "phase": "apply", "class": "mutating"}},
    {"write":   {"writer": 0, "value": 101}},
    {"clear":   {}},
    {"hold":    {"client": 1, "server": 1, "phase": "apply", "class": "mutating"}},
    {"write":   {"writer": 1, "value": 202}},
    {"clear":   {}},
    {"release": {"client": 0}},
    {"hold":    {"server": 2, "phase": "respond", "class": "read"}},
    {"read":    {"reader": 0}}
  ]
}`

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	targets := []struct {
		kind     string
		violated bool
	}{
		{"naive", true},    // 3 plain registers: below the kf+f+1 bound
		{"abd-max", false}, // 3 max-registers: Table 1 optimum
		{"abd-cas", false}, // 3 CAS cells: Table 1 optimum
	}
	fmt.Println("one schedule, three base-object types (Lemma 4's run):")
	for _, target := range targets {
		doc := strings.ReplaceAll(attackTemplate, "%KIND%", target.kind)
		doc = strings.ReplaceAll(doc, "%VIOLATED%", fmt.Sprintf("%v", target.violated))
		s, err := scenario.Load(strings.NewReader(doc))
		if err != nil {
			log.Fatalf("%s: load: %v", target.kind, err)
		}
		res, err := s.Run(ctx)
		if err != nil {
			log.Fatalf("%s: run: %v", target.kind, err)
		}
		status := "SAFE     (read the fresh value)"
		if res.WSSafety != nil {
			status = "VIOLATED (read the stale value)"
		}
		fmt.Printf("  %-8s read=%v  %s  expectations met: %v\n",
			target.kind, res.Reads, status, res.ExpectationsMet)
		if !res.ExpectationsMet {
			log.Fatalf("%s: unexpected outcome: %v", target.kind, res.Failures)
		}
	}
	fmt.Println("\nthe released covering write overwrites a plain register but cannot")
	fmt.Println("regress a max-register or a CAS cell — Table 1's separation as data.")
}
