GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json fabric-bench loadgen-smoke lint race-lanes race-lanes-mailbox1 race-shards race-churn race-coded race-resize

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet always, staticcheck when installed (the CI image
# has it; local checkouts without it still get a green target).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (space metrics + latency + fabric throughput).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# One-iteration smoke run, as in CI.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Perf trajectory snapshot: triggers/sec (in-process and latency lanes,
# side by side), sweep wall-clock, checker ns/op, the end-to-end loadgen
# numbers (high-level ops/sec + latency percentiles through the async
# client engine on both lanes), the shard-count sweep (aggregate ops/sec
# at 1/2/4/8 shards), the open-loop latency-vs-rate curve with its knee,
# and the replicated-vs-coded bytes-per-server space grid (E25) —
# recorded as BENCH_<date>.json so future PRs have a baseline.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 100ms

# End-to-end smoke: a short closed-loop run on the latency lane through
# the async client engine — 1000 logical clients on one engine goroutine,
# peak in-flight gated at >= 1000, read validity + sampled linearizability
# checked (the command fails on any violation).
loadgen-smoke:
	$(GO) run ./cmd/loadgen -kind abd-max -atomic -clients 1000 -read-frac 0.5 \
		-lane latency -duration 2s -maxops 100000 -min-inflight 1000

# The fabric dispatch throughput number tracked in the perf trajectory.
fabric-bench:
	$(GO) test -run xxx -bench BenchmarkFabricParallelTrigger -benchtime 2s .

# Lane-backend suite under the race detector: latency lanes (event loop,
# snapshot scans, coalescing, crash windows), the TCP protocol/node/client
# with pipelined frames, and the chaos suites over both (the TCP chaos
# suite spawns real cmd/lanenode processes).
LANE_TESTS = 'TestLatencyLane|TestCustomLaneBackend|TestScanSnapshot|TestProto|TestNetworkLane|TestDisconnectIsCrash|TestCrashDuringRemoteScan|TestChaosLatencyLaneSweep|TestTCPLane'
race-lanes:
	$(GO) test -race -count 1 -run $(LANE_TESTS) ./internal/fabric ./internal/lanenet ./internal/runner

# The same suite with every lane mailbox clamped to capacity 1: each
# delivery blocks until the event loop dequeues the previous group, so the
# backpressure path (instead of the buffered fast path) carries the whole
# suite.
race-lanes-mailbox1:
	REPRO_LANE_MAILBOX=1 $(GO) test -race -count 1 -run $(LANE_TESTS) ./internal/fabric ./internal/lanenet ./internal/runner

# Sharded-store suite under the race detector: deterministic shard
# routing, the multi-engine frontend (client identity, key affinity,
# per-client serialization), crash-per-shard end-to-end runs, the
# multi-table lanenet node, the sharded loadgen paths, and the TCP-lane
# smoke — 2 shards x 3 servers multiplexed over 2 real cmd/lanenode
# processes, plus the 3-process variant that kills a node mid-run.
SHARD_TESTS = 'TestShard|TestBalancedKeys|TestClientIdentity|TestMultiTableNode|TestBindRoundTrip|TestShardedRun|TestOpenLoopCoordinatedOmission|TestRateSweepKnee'
race-shards:
	$(GO) test -race -count 1 -run $(SHARD_TESTS) ./internal/shardstore ./internal/lanenet ./internal/loadgen

# Reconfiguration suite under the race detector: the Replace protocol
# (freeze/drain/transfer/activate, parked-op outcomes, refusals), live
# rolling replacement of every server of every construction under client
# load, the churn chaos net on its pinned seeds (E24), membership
# accounting, the stateful place frames and node drain on the TCP lane,
# and whole-shard reconfiguration through the sharded store (in-process
# and over real cmd/lanenode processes).
CHURN_TESTS = 'TestReplace|TestTriggerOnDepartingServer|TestViewRetryDelay|TestAccounting|TestReconfigureMidFlight|TestChurn|TestLanenodeGracefulDrain|TestPlaceFrameCarriesState|TestDrainFinishesInFlight|TestShardStoreReconfigure|TestShardStoreTCPReconfigure'
race-churn:
	$(GO) test -race -count 1 -run $(CHURN_TESTS) ./internal/fabric ./internal/cluster ./internal/runner ./internal/lanenet ./internal/shardstore

# Erasure-coded suite under the race detector: the GF(2^8) coder and the
# coded construction (concurrent writers/readers, crash tolerance, space
# accounting, live replacement), the torn-stripe adversary on all three
# lane backends (the TCP variant spawns real cmd/lanenode processes), the
# coded chaos net on its pinned seeds (E26), and the end-to-end space axis
# through the sharded store.
CODED_TESTS = 'TestGF|TestCoder|TestCoded|TestFragStore|TestTornStripe|TestChaosCoded|TestCodedSpaceAxis'
race-coded:
	$(GO) test -race -count 1 -run $(CODED_TESTS) ./internal/emulation/coded ./internal/baseobj ./internal/runner ./internal/loadgen

# Live view-resizing suite under the race detector: batched transitions
# (grow, shrink, f change) as single epoch bumps — the fabric coordinator
# and its abort path (a leaver or transfer target crashing inside the
# sealed-but-not-activated window must roll the old view back intact, on
# all three lane backends), grow/shrink under open client load with zero
# failed ops, the coded construction's restripe-or-reject on kData change,
# the resize chaos net on its pinned seeds (E27: sound constructions clean,
# naive caught), the transition-crash matrix (E28), and per-shard resizing
# through the sharded store (in-process and over real cmd/lanenode
# processes).
RESIZE_TESTS = 'TestResize|TestCodedResize|TestTransitionCrash|TestShardStoreResize|TestShardStoreTCPResize'
race-resize:
	$(GO) test -race -count 1 -run $(RESIZE_TESTS) ./internal/fabric ./internal/runner ./internal/emulation/coded ./internal/shardstore
