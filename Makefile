GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json fabric-bench

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (space metrics + latency + fabric throughput).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# One-iteration smoke run, as in CI.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Perf trajectory snapshot: triggers/sec, sweep wall-clock, checker ns/op
# recorded as BENCH_<date>.json so future PRs have a baseline.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 100ms

# The fabric dispatch throughput number tracked in the perf trajectory.
fabric-bench:
	$(GO) test -run xxx -bench BenchmarkFabricParallelTrigger -benchtime 2s .
