GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json fabric-bench

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (space metrics + latency + fabric throughput).
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# One-iteration smoke run, as in CI.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Perf trajectory snapshot: triggers/sec (in-process and latency lanes,
# side by side), sweep wall-clock, checker ns/op recorded as
# BENCH_<date>.json so future PRs have a baseline.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 100ms

# The fabric dispatch throughput number tracked in the perf trajectory.
fabric-bench:
	$(GO) test -run xxx -bench BenchmarkFabricParallelTrigger -benchtime 2s .

# Lane-backend suite under the race detector: latency lanes, the TCP
# protocol/node/client, and the chaos suites over both (the TCP chaos
# suite spawns real cmd/lanenode processes).
race-lanes:
	$(GO) test -race -count 1 -run 'TestLatencyLane|TestCustomLaneBackend|TestProto|TestNetworkLane|TestDisconnectIsCrash|TestCrashDuringRemoteScan|TestChaosLatencyLaneSweep|TestTCPLane' ./internal/fabric ./internal/lanenet ./internal/runner
